// Multi-level nesting — the paper's future-work case ("queries with
// multiple subqueries and multiple nesting levels"). The engine unnests
// quantifier conjuncts inside join predicates into nested semijoins.

#include <gtest/gtest.h>

#include "adl/analysis.h"
#include "tests/test_util.h"

namespace n2j {
namespace {

using testutil::CheckEquivalence;
using testutil::HasNestedBaseTable;
using testutil::TranslateOrDie;

class MultiLevelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    XYConfig config;
    config.seed = 53;
    config.x_rows = 25;
    config.y_rows = 25;
    ASSERT_TRUE(AddRandomXY(db_.get(), config).ok());
    // A third relation for three-level queries.
    ASSERT_TRUE(
        db_->CreateTable("W", Type::Tuple({{"b", Type::Int()},
                                           {"f", Type::Int()}}))
            .ok());
    Rng rng(9);
    for (int i = 0; i < 25; ++i) {
      ASSERT_TRUE(db_->Insert(
                         "W", Value::Tuple({Field("b", Value::Int(
                                                           rng.Uniform(0, 7))),
                                            Field("f", Value::Int(rng.Uniform(
                                                           0, 7)))}))
                      .ok());
    }
  }
  std::unique_ptr<Database> db_;
};

size_t CountKind(const ExprPtr& e, ExprKind kind) {
  size_t n = 0;
  VisitPreOrder(e, [&](const ExprPtr& node) {
    if (node->kind() == kind) ++n;
  });
  return n;
}

TEST_F(MultiLevelTest, TwoLevelExistentialBecomesNestedSemiJoins) {
  // ∃y∈Y (correlated with x) whose predicate has ∃w∈W (correlated
  // with y): both levels unnest.
  ExprPtr e = TranslateOrDie(
      *db_,
      "select x from x in X where exists y in Y : y.a = x.a and "
      "(exists w in W : w.b = y.e)");
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("Rule1-SemiJoin")) << r.TraceToString();
  EXPECT_TRUE(r.Fired("Rule1-SemiJoin(inner)")) << r.TraceToString();
  EXPECT_EQ(CountKind(r.expr, ExprKind::kSemiJoin), 2u);
  EXPECT_FALSE(HasNestedBaseTable(r.expr)) << AlgebraStr(r.expr);
}

TEST_F(MultiLevelTest, MixedPolarityLevels) {
  // ∃y ... ¬∃w: inner level becomes an antijoin on Y.
  ExprPtr e = TranslateOrDie(
      *db_,
      "select x from x in X where exists y in Y : y.a = x.a and "
      "not (exists w in W : w.b = y.e)");
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("Rule1-AntiJoin(inner)")) << r.TraceToString();
  EXPECT_FALSE(HasNestedBaseTable(r.expr)) << AlgebraStr(r.expr);
}

TEST_F(MultiLevelTest, ThreeLevels) {
  ExprPtr e = TranslateOrDie(
      *db_,
      "select x from x in X where exists y in Y : y.a = x.a and "
      "(exists w in W : w.b = y.e and "
      "(exists v in Y : v.e = w.f))");
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_FALSE(HasNestedBaseTable(r.expr)) << AlgebraStr(r.expr) << "\n"
                                           << r.TraceToString();
  EXPECT_GE(CountKind(r.expr, ExprKind::kSemiJoin), 3u);
}

TEST_F(MultiLevelTest, InnerConjunctUsingOuterVariableStaysPut) {
  // The inner quantifier references x (the outer variable), so it cannot
  // move into the right operand of the outer semijoin; the query must
  // still evaluate correctly.
  ExprPtr e = TranslateOrDie(
      *db_,
      "select x from x in X where exists y in Y : y.a = x.a and "
      "(exists w in W : w.b = x.a)");
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_FALSE(r.Fired("Rule1-SemiJoin(inner)")) << r.TraceToString();
  // (It could in principle hoist to a second top-level semijoin on X —
  // and does, since the conjunct only uses x after the outer pull.)
}

TEST_F(MultiLevelTest, MultipleSubqueriesSameLevel) {
  // Two independent subqueries of the same block: two semijoins stack.
  ExprPtr e = TranslateOrDie(
      *db_,
      "select x from x in X where "
      "(exists y in Y : y.a = x.a) and (exists w in W : w.b = x.a)");
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_EQ(CountKind(r.expr, ExprKind::kSemiJoin), 2u)
      << AlgebraStr(r.expr);
  EXPECT_FALSE(HasNestedBaseTable(r.expr));
}

TEST_F(MultiLevelTest, NestJoinOverSemiJoinComposition) {
  // A grouping query whose correlated subquery itself contains an
  // unnestable inner level.
  ExprPtr e = TranslateOrDie(
      *db_,
      "select (a = x.a, n = count(Yp)) from x in X "
      "with Yp = select y from y in Y "
      "where y.a = x.a and (exists w in W : w.b = y.e)");
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("NestJoinRewrite")) << r.TraceToString();
  EXPECT_FALSE(HasNestedBaseTable(r.expr)) << AlgebraStr(r.expr);
}

}  // namespace
}  // namespace n2j
