// The PNHL algorithm of [DeLa92] (Section 6.2) and its baselines.

#include "exec/pnhl.h"

#include <gtest/gtest.h>

#include "storage/datagen.h"

namespace n2j {
namespace {

/// Builds outer tuples (id, parts : {(pid)}) and an inner table
/// (pid, payload) — a miniature of the paper's SUPPLIER/PART join.
struct SetJoinFixture {
  Value outer;
  Value inner;
  PnhlParams params;

  static SetJoinFixture Make() {
    SetJoinFixture f;
    auto elem = [](int64_t pid) {
      return Value::Tuple({Field("pid", Value::Int(pid))});
    };
    auto outer_row = [&](int64_t id, std::vector<int64_t> pids) {
      std::vector<Value> parts;
      for (int64_t p : pids) parts.push_back(elem(p));
      return Value::Tuple({Field("id", Value::Int(id)),
                           Field("parts", Value::Set(std::move(parts)))});
    };
    f.outer = Value::Set({
        outer_row(1, {10, 11}),
        outer_row(2, {}),          // empty set attribute
        outer_row(3, {11, 12, 99}),  // 99 dangles
    });
    auto inner_row = [](int64_t pid, int64_t payload) {
      return Value::Tuple({Field("pid", Value::Int(pid)),
                           Field("w", Value::Int(payload))});
    };
    f.inner = Value::Set({inner_row(10, 100), inner_row(11, 110),
                          inner_row(12, 120), inner_row(13, 130)});
    f.params.set_attr = "parts";
    f.params.elem_key = "pid";
    f.params.inner_key = "pid";
    return f;
  }
};

TEST(PnhlTest, JoinsSetElementsWithInnerTable) {
  SetJoinFixture f = SetJoinFixture::Make();
  PnhlStats stats;
  Result<Value> r = PnhlJoin(f.outer, f.inner, f.params, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->set_size(), 3u);
  for (const Value& x : r->elements()) {
    int64_t id = x.FindField("id")->int_value();
    const Value& parts = *x.FindField("parts");
    if (id == 1) {
      ASSERT_EQ(parts.set_size(), 2u);
      // Elements carry the joined payload, key appearing once.
      for (const Value& e : parts.elements()) {
        EXPECT_NE(e.FindField("w"), nullptr);
        EXPECT_NE(e.FindField("pid"), nullptr);
        EXPECT_EQ(e.tuple_size(), 2u);
      }
    }
    if (id == 2) EXPECT_EQ(parts.set_size(), 0u);
    if (id == 3) EXPECT_EQ(parts.set_size(), 2u);  // 99 dangles away
  }
  EXPECT_EQ(stats.partitions, 1u);
  EXPECT_EQ(stats.matches, 4u);
}

TEST(PnhlTest, PartitioningPreservesResult) {
  SetJoinFixture f = SetJoinFixture::Make();
  PnhlParams unlimited = f.params;
  Result<Value> full = PnhlJoin(f.outer, f.inner, unlimited, nullptr);
  ASSERT_TRUE(full.ok());

  for (size_t budget : {1u, 40u, 80u, 160u}) {
    PnhlParams limited = f.params;
    limited.memory_budget = budget;
    PnhlStats stats;
    Result<Value> part = PnhlJoin(f.outer, f.inner, limited, &stats);
    ASSERT_TRUE(part.ok()) << "budget=" << budget;
    EXPECT_EQ(*full, *part) << "budget=" << budget;
    if (budget < 40) {
      EXPECT_GT(stats.partitions, 1u);
      // Each segment pass probes the outer operand once.
      EXPECT_EQ(stats.probe_tuples, 3u * stats.partitions);
    }
  }
}

TEST(PnhlTest, SegmentArithmeticEdgeCases) {
  SetJoinFixture f = SetJoinFixture::Make();
  Result<Value> full = PnhlJoin(f.outer, f.inner, f.params, nullptr);
  ASSERT_TRUE(full.ok());
  size_t row_bytes = f.inner.elements()[0].ApproxBytes();
  ASSERT_GT(row_bytes, 0u);

  // budget = 1 byte: every row exceeds the budget on its own; each must
  // still get its own (singleton) segment — 4 rows → 4 partitions.
  {
    PnhlParams p = f.params;
    p.memory_budget = 1;
    PnhlStats stats;
    Result<Value> r = PnhlJoin(f.outer, f.inner, p, &stats);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*full, *r);
    EXPECT_EQ(stats.partitions, 4u);
  }
  // budget = exactly one row: a second row must NOT squeeze into the
  // segment (the off-by-one this test pins down) — again 4 partitions.
  {
    PnhlParams p = f.params;
    p.memory_budget = row_bytes;
    PnhlStats stats;
    Result<Value> r = PnhlJoin(f.outer, f.inner, p, &stats);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*full, *r);
    EXPECT_EQ(stats.partitions, 4u);
  }
  // budget = two rows: pairs fit, so exactly 2 partitions (>= 2 forced).
  {
    PnhlParams p = f.params;
    p.memory_budget = 2 * row_bytes;
    PnhlStats stats;
    Result<Value> r = PnhlJoin(f.outer, f.inner, p, &stats);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*full, *r);
    EXPECT_EQ(stats.partitions, 2u);
  }
  // A budget one byte short of a row must not admit it (the comparison
  // is overflow-proof: bytes + row size never computed directly).
  {
    PnhlParams p = f.params;
    p.memory_budget = row_bytes - 1;
    PnhlStats stats;
    Result<Value> r = PnhlJoin(f.outer, f.inner, p, &stats);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*full, *r);
    EXPECT_EQ(stats.partitions, 4u);
  }
}

TEST(PnhlTest, ParallelSegmentsMatchSerial) {
  SetJoinFixture f = SetJoinFixture::Make();
  for (size_t budget : {size_t{1}, size_t{40}, size_t{80}, SIZE_MAX}) {
    PnhlParams serial = f.params;
    serial.memory_budget = budget;
    PnhlStats serial_stats;
    Result<Value> s = PnhlJoin(f.outer, f.inner, serial, &serial_stats);
    ASSERT_TRUE(s.ok());
    for (int threads : {2, 8}) {
      PnhlParams mt = serial;
      mt.num_threads = threads;
      PnhlStats mt_stats;
      Result<Value> p = PnhlJoin(f.outer, f.inner, mt, &mt_stats);
      ASSERT_TRUE(p.ok()) << "budget=" << budget << " threads=" << threads;
      EXPECT_EQ(*s, *p) << "budget=" << budget << " threads=" << threads;
      // Counters are merged in segment order: exact, not approximate.
      EXPECT_EQ(serial_stats.partitions, mt_stats.partitions);
      EXPECT_EQ(serial_stats.build_inserts, mt_stats.build_inserts);
      EXPECT_EQ(serial_stats.probe_tuples, mt_stats.probe_tuples);
      EXPECT_EQ(serial_stats.probe_elements, mt_stats.probe_elements);
      EXPECT_EQ(serial_stats.matches, mt_stats.matches);
    }
  }
}

TEST(PnhlTest, AgreesWithNestedLoopBaseline) {
  SetJoinFixture f = SetJoinFixture::Make();
  Result<Value> pnhl = PnhlJoin(f.outer, f.inner, f.params, nullptr);
  Result<Value> nl = NestedLoopSetJoin(f.outer, f.inner, f.params, nullptr);
  ASSERT_TRUE(pnhl.ok());
  ASSERT_TRUE(nl.ok());
  EXPECT_EQ(*pnhl, *nl);
}

TEST(PnhlTest, UnnestJoinNestLosesEmptySetTuples) {
  // The unnest-based plan drops (id=2, parts=∅) — the structural reason
  // the paper prefers PNHL for this operation.
  SetJoinFixture f = SetJoinFixture::Make();
  Result<Value> lossy =
      UnnestJoinNest(f.outer, f.inner, f.params, /*keep_dangling=*/false,
                     nullptr);
  ASSERT_TRUE(lossy.ok());
  EXPECT_EQ(lossy->set_size(), 2u);
  Result<Value> fixed =
      UnnestJoinNest(f.outer, f.inner, f.params, /*keep_dangling=*/true,
                     nullptr);
  ASSERT_TRUE(fixed.ok());
  Result<Value> pnhl = PnhlJoin(f.outer, f.inner, f.params, nullptr);
  EXPECT_EQ(*fixed, *pnhl);
}

TEST(PnhlTest, UnnestBaselineDuplicatesOuterData) {
  // Cost asymmetry: the unnest plan probes one flat tuple per set
  // element (each carrying copied outer attributes), PNHL probes set
  // elements in place.
  SetJoinFixture f = SetJoinFixture::Make();
  PnhlStats pnhl_stats, unnest_stats;
  ASSERT_TRUE(PnhlJoin(f.outer, f.inner, f.params, &pnhl_stats).ok());
  ASSERT_TRUE(UnnestJoinNest(f.outer, f.inner, f.params, true,
                             &unnest_stats)
                  .ok());
  EXPECT_EQ(pnhl_stats.probe_elements, unnest_stats.probe_elements);
  EXPECT_EQ(pnhl_stats.build_inserts, unnest_stats.build_inserts);
}

TEST(PnhlTest, LargerRandomInstanceAllStrategiesAgree) {
  SupplierPartConfig config;
  config.seed = 3;
  config.num_parts = 200;
  config.num_suppliers = 60;
  config.parts_per_supplier = 8;
  config.match_fraction = 0.9;
  auto db = MakeSupplierPartDatabase(config);
  Value outer = db->FindTable("SUPPLIER")->AsSetValue();
  // Project suppliers' part refs to int keys for this test: use oids
  // directly (they are hashable values).
  Value inner = db->FindTable("PART")->AsSetValue();
  PnhlParams params;
  params.set_attr = "parts";
  params.elem_key = "pid";
  params.inner_key = "pid";
  Result<Value> a = PnhlJoin(outer, inner, params, nullptr);
  Result<Value> b = NestedLoopSetJoin(outer, inner, params, nullptr);
  params.memory_budget = 4096;
  PnhlStats stats;
  Result<Value> c = PnhlJoin(outer, inner, params, &stats);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(*a, *c);
  EXPECT_GT(stats.partitions, 1u);
}

TEST(PnhlTest, InputValidation) {
  SetJoinFixture f = SetJoinFixture::Make();
  EXPECT_FALSE(PnhlJoin(Value::Int(1), f.inner, f.params, nullptr).ok());
  PnhlParams bad = f.params;
  bad.set_attr = "nope";
  EXPECT_FALSE(PnhlJoin(f.outer, f.inner, bad, nullptr).ok());
  PnhlParams bad_key = f.params;
  bad_key.inner_key = "nope";
  EXPECT_FALSE(PnhlJoin(f.outer, f.inner, bad_key, nullptr).ok());
}

}  // namespace
}  // namespace n2j
