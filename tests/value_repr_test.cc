// Property tests of the compact Value representation itself: the
// 16-byte tagged union, interned TupleShape identity (including across
// threads — this file runs under the TSan CI job), memoized hashing,
// and canonical-form stability under rebuild. value_property_test.cc
// checks the algebraic laws; this file checks the representation
// invariants those laws are implemented on top of.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "adl/tuple_shape.h"
#include "adl/value.h"
#include "common/rng.h"

namespace n2j {
namespace {

/// Random nested value (same distribution as value_property_test.cc).
Value RandomValue(Rng& rng, int depth) {
  int pick = static_cast<int>(rng.Uniform(0, depth > 0 ? 6 : 3));
  switch (pick) {
    case 0:
      return Value::Int(rng.Uniform(-5, 5));
    case 1:
      return Value::String(rng.NextString(2));
    case 2:
      return Value::Bool(rng.Bernoulli(0.5));
    case 3:
      return Value::Double(static_cast<double>(rng.Uniform(-4, 4)) / 2.0);
    case 4: {
      std::vector<Field> fields;
      int n = static_cast<int>(rng.Uniform(0, 3));
      for (int i = 0; i < n; ++i) {
        fields.emplace_back(std::string(1, static_cast<char>('a' + i)),
                            RandomValue(rng, depth - 1));
      }
      return Value::Tuple(std::move(fields));
    }
    default: {
      std::vector<Value> elems;
      int n = static_cast<int>(rng.Uniform(0, 4));
      for (int i = 0; i < n; ++i) {
        elems.push_back(RandomValue(rng, depth - 1));
      }
      return Value::Set(std::move(elems));
    }
  }
}

/// Rebuilds `v` from scratch through the public factories: no payload
/// sharing with the original, all memo fields start unset. The rebuilt
/// value must be indistinguishable from the original.
Value Rebuild(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      return Value();
    case Value::Kind::kBool:
      return Value::Bool(v.bool_value());
    case Value::Kind::kInt:
      return Value::Int(v.int_value());
    case Value::Kind::kDouble:
      return Value::Double(v.double_value());
    case Value::Kind::kString:
      return Value::String(std::string(v.string_value()));
    case Value::Kind::kOid:
      return Value::MakeOidValue(v.oid_value());
    case Value::Kind::kTuple: {
      std::vector<Field> fields;
      for (size_t i = 0; i < v.tuple_size(); ++i) {
        fields.emplace_back(v.field_name(i), Rebuild(v.field_value(i)));
      }
      return Value::Tuple(std::move(fields));
    }
    case Value::Kind::kSet: {
      std::vector<Value> elems;
      for (const Value& e : v.elements()) elems.push_back(Rebuild(e));
      return Value::Set(std::move(elems));
    }
  }
  N2J_CHECK(false);
}

TEST(ValueReprTest, ValueIsASixteenByteTaggedUnion) {
  // Also a static_assert in value.h; asserted here so a regression
  // shows up as a named test failure, not just a build break.
  EXPECT_LE(sizeof(Value), 16u);
  EXPECT_LE(sizeof(Field), sizeof(std::string) + sizeof(Value));
}

class ValueReprPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ValueReprPropertyTest, RebuildIsIndistinguishable) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 1000);
  for (int round = 0; round < 60; ++round) {
    Value v = RandomValue(rng, 3);
    Value w = Rebuild(v);
    EXPECT_EQ(v, w);
    EXPECT_EQ(v.Compare(w), 0);
    EXPECT_EQ(v.Hash(), w.Hash());
    EXPECT_EQ(v.ToString(), w.ToString());
    if (v.is_set()) {
      // Canonical form is stable: element order survives the rebuild.
      ASSERT_EQ(v.set_size(), w.set_size());
      for (size_t i = 0; i < v.set_size(); ++i) {
        EXPECT_EQ(v.elements()[i], w.elements()[i]);
      }
    }
  }
}

TEST_P(ValueReprPropertyTest, MemoizedHashEqualsFreshRecompute) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 2000);
  for (int round = 0; round < 60; ++round) {
    Value v = RandomValue(rng, 3);
    uint64_t first = v.Hash();         // computes and memoizes
    uint64_t memoized = v.Hash();      // served from the memo
    uint64_t fresh = Rebuild(v).Hash();  // recomputed on new payloads
    EXPECT_EQ(first, memoized);
    EXPECT_EQ(first, fresh) << v.ToString();
  }
}

TEST_P(ValueReprPropertyTest, CopiesSharePayloadAndCompareByIdentity) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 3000);
  for (int round = 0; round < 40; ++round) {
    Value v = RandomValue(rng, 2);
    Value copy = v;  // refcount bump, not a deep copy
    EXPECT_EQ(v, copy);
    EXPECT_EQ(v.Compare(copy), 0);
    EXPECT_EQ(v.Hash(), copy.Hash());
    if (v.is_tuple()) {
      EXPECT_EQ(v.tuple_shape(), copy.tuple_shape());
      EXPECT_EQ(&v.tuple_values(), &copy.tuple_values());
    }
    if (v.is_set()) {
      EXPECT_EQ(&v.elements(), &copy.elements());
    }
  }
}

TEST_P(ValueReprPropertyTest, EqualTuplesShareTheInternedShape) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 4000);
  for (int round = 0; round < 40; ++round) {
    std::vector<Field> f1, f2;
    int n = static_cast<int>(rng.Uniform(1, 4));
    for (int i = 0; i < n; ++i) {
      std::string name(1, static_cast<char>('a' + i));
      f1.emplace_back(name, RandomValue(rng, 1));
      f2.emplace_back(name, RandomValue(rng, 1));
    }
    Value t1 = Value::Tuple(std::move(f1));
    Value t2 = Value::Tuple(std::move(f2));
    // Same field names in the same order → the same shape pointer,
    // independently of the values.
    EXPECT_EQ(t1.tuple_shape(), t2.tuple_shape());
  }
}

TEST(ValueReprTest, ShapeInterningIsStableAcrossThreads) {
  // Hammer the intern registry and the derived-shape memos from many
  // threads; all threads must observe identical shape pointers. Run
  // under TSan (the CI thread-sanitizer job builds this test) this
  // also proves the registry locking is race-free.
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::vector<std::string> base = {"a", "b", "c"};
  const TupleShape* expected = TupleShape::Intern(base);
  const TupleShape* expected_ext = expected->ExtendedWith("d");
  const TupleShape* expected_rem = expected->WithoutField("b");
  std::vector<std::thread> threads;
  std::vector<int> mismatches(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        std::vector<std::string> names = {"a", "b", "c"};
        const TupleShape* s = TupleShape::Intern(std::move(names));
        if (s != expected) ++mismatches[t];
        if (s->ExtendedWith("d") != expected_ext) ++mismatches[t];
        if (s->WithoutField("b") != expected_rem) ++mismatches[t];
        // A per-thread-unique shape interned twice must also agree
        // with itself.
        std::vector<std::string> uniq = {"t" + std::to_string(t),
                                         "r" + std::to_string(r % 7)};
        if (TupleShape::Intern(uniq) != TupleShape::Intern(uniq)) {
          ++mismatches[t];
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0);
}

TEST(ValueReprTest, ConcurrentHashingOfASharedValueIsConsistent) {
  // The hash memo is written racily-but-idempotently (all writers store
  // the same value); under TSan this asserts the atomics are enough.
  Rng rng(99);
  Value v = RandomValue(rng, 3);
  while (!v.is_set() || v.set_size() == 0) v = RandomValue(rng, 3);
  const uint64_t expected = Rebuild(v).Hash();
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<uint64_t> got(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] { got[t] = v.Hash(); });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(got[t], expected);
}

TEST(ValueReprTest, ApproxBytesCountsPayloadsOnce) {
  // Atoms are wholly inline.
  EXPECT_EQ(Value::Int(7).ApproxBytes(), sizeof(Value));
  EXPECT_EQ(Value::Bool(true).ApproxBytes(), sizeof(Value));
  // Containers charge their payload plus children; a copy adds nothing
  // (shared payload), so the estimate is per distinct allocation.
  Value t = Value::Tuple({Field("a", Value::Int(1))});
  Value copy = t;
  EXPECT_EQ(t.ApproxBytes(), copy.ApproxBytes());
  EXPECT_GT(t.ApproxBytes(), sizeof(Value));
  // Nesting grows the estimate monotonically.
  Value outer = Value::Tuple({Field("inner", t)});
  EXPECT_GT(outer.ApproxBytes(), t.ApproxBytes());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueReprPropertyTest,
                         ::testing::Range(1, 6));

}  // namespace
}  // namespace n2j
