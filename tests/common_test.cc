#include <gtest/gtest.h>

#include "adl/analysis.h"
#include "adl/printer.h"
#include "common/result.h"
#include "common/status.h"
#include "common/str_util.h"
#include "exec/equi_join.h"

namespace n2j {
namespace {

TEST(StatusTest, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  Status st = Status::TypeError("bad type");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
  EXPECT_EQ(st.message(), "bad type");
  EXPECT_EQ(st.ToString(), "TypeError: bad type");
  EXPECT_EQ(Status::OK().ToString(), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Result<int> Doubled(int v) {
  N2J_ASSIGN_OR_RETURN(int x, ParsePositive(v));
  return x * 2;
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> ok = ParsePositive(3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 3);
  Result<int> err = ParsePositive(-1);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(*Doubled(5), 10);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(StrUtilTest, JoinSplitFormat) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_TRUE(StartsWith("select x", "select"));
  EXPECT_FALSE(StartsWith("sel", "select"));
  EXPECT_TRUE(EndsWith("a.cc", ".cc"));
  EXPECT_EQ(Repeat("ab", 3), "ababab");
  EXPECT_EQ(Repeat("ab", 0), "");
}

TEST(StrUtilTest, HashingIsStable) {
  EXPECT_EQ(Fnv1a("abc", 3), Fnv1a("abc", 3));
  EXPECT_NE(Fnv1a("abc", 3), Fnv1a("abd", 3));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(EquiJoinTest, ExtractsOrientedKeyPairs) {
  // x.a = y.b ∧ y.c = x.d ∧ x.e > 1 ∧ y.f < 2 ∧ x.g < y.h
  ExprPtr pred = Expr::AndAll({
      Expr::Eq(Expr::Access(Expr::Var("x"), "a"),
               Expr::Access(Expr::Var("y"), "b")),
      Expr::Eq(Expr::Access(Expr::Var("y"), "c"),
               Expr::Access(Expr::Var("x"), "d")),
      Expr::Bin(BinOp::kGt, Expr::Access(Expr::Var("x"), "e"),
                Expr::Const(Value::Int(1))),
      Expr::Bin(BinOp::kLt, Expr::Access(Expr::Var("y"), "f"),
                Expr::Const(Value::Int(2))),
      Expr::Bin(BinOp::kLt, Expr::Access(Expr::Var("x"), "g"),
                Expr::Access(Expr::Var("y"), "h")),
  });
  EquiJoinKeys keys = ExtractEquiKeys(pred, "x", "y");
  ASSERT_TRUE(keys.usable());
  ASSERT_EQ(keys.left_keys.size(), 2u);
  // Both orientations land left-side-first.
  EXPECT_EQ(AlgebraStr(keys.left_keys[0]), "x.a");
  EXPECT_EQ(AlgebraStr(keys.right_keys[0]), "y.b");
  EXPECT_EQ(AlgebraStr(keys.left_keys[1]), "x.d");
  EXPECT_EQ(AlgebraStr(keys.right_keys[1]), "y.c");
  EXPECT_EQ(keys.residual.size(), 3u);
}

TEST(EquiJoinTest, NoKeysWhenBothSidesMixVariables) {
  ExprPtr pred = Expr::Eq(
      Expr::Bin(BinOp::kAdd, Expr::Access(Expr::Var("x"), "a"),
                Expr::Access(Expr::Var("y"), "b")),
      Expr::Const(Value::Int(3)));
  EquiJoinKeys keys = ExtractEquiKeys(pred, "x", "y");
  EXPECT_FALSE(keys.usable());
  EXPECT_EQ(keys.residual.size(), 1u);
}

TEST(EquiJoinTest, OuterVariablesMayAppearInKeys) {
  // x.a + o = y.b with an outer variable o: still a usable key pair.
  ExprPtr pred = Expr::Eq(
      Expr::Bin(BinOp::kAdd, Expr::Access(Expr::Var("x"), "a"),
                Expr::Var("o")),
      Expr::Access(Expr::Var("y"), "b"));
  EquiJoinKeys keys = ExtractEquiKeys(pred, "x", "y");
  ASSERT_TRUE(keys.usable());
  EXPECT_EQ(keys.left_keys.size(), 1u);
}

TEST(EquiJoinTest, ConstantConjunctStaysResidual) {
  ExprPtr pred = Expr::And(
      Expr::Eq(Expr::Const(Value::Int(1)), Expr::Const(Value::Int(1))),
      Expr::Eq(Expr::Access(Expr::Var("x"), "a"),
               Expr::Access(Expr::Var("y"), "a")));
  EquiJoinKeys keys = ExtractEquiKeys(pred, "x", "y");
  ASSERT_TRUE(keys.usable());
  EXPECT_EQ(keys.left_keys.size(), 1u);
  EXPECT_EQ(keys.residual.size(), 1u);
}

TEST(ExprTest, WithChildrenPreservesScalars) {
  ExprPtr nj = Expr::NestJoin(Expr::Table("X"), Expr::Table("Y"), "x", "y",
                              Expr::True(), "ys");
  std::vector<ExprPtr> kids = nj->children();
  kids[0] = Expr::Table("Z");
  ExprPtr rebuilt = nj->WithChildren(std::move(kids));
  EXPECT_EQ(rebuilt->kind(), ExprKind::kNestJoin);
  EXPECT_EQ(rebuilt->var(), "x");
  EXPECT_EQ(rebuilt->var2(), "y");
  EXPECT_EQ(rebuilt->name(), "ys");
  EXPECT_EQ(rebuilt->child(0)->name(), "Z");
}

TEST(ExprTest, AndAllOfNothingIsTrue) {
  ExprPtr t = Expr::AndAll({});
  EXPECT_EQ(t->kind(), ExprKind::kConst);
  EXPECT_TRUE(t->const_value().bool_value());
  ExprPtr single = Expr::AndAll({Expr::Var("p")});
  EXPECT_EQ(single->kind(), ExprKind::kVar);
}

TEST(ExprTest, PathBuildsChainedAccess) {
  ExprPtr p = Expr::Path(Expr::Var("d"), {"supplier", "sname"});
  EXPECT_EQ(AlgebraStr(p), "d.supplier.sname");
}

}  // namespace
}  // namespace n2j
