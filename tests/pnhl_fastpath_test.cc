// The PNHL fast path: the evaluator recognizes the Section 6.2 map
// pattern and runs [DeLa92]'s algorithm instead of per-tuple joins.

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace n2j {
namespace {

using testutil::EvalExpr;

class PnhlFastPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    // S(id, items : {(k, q)}) and T(k2, w): key names differ so the
    // pattern is also expressible as a plain ADL join (reference
    // semantics for the fast path).
    ASSERT_TRUE(
        db_->CreateTable(
               "S",
               Type::Tuple(
                   {{"id", Type::Int()},
                    {"items", Type::Set(Type::Tuple({{"k", Type::Int()},
                                                     {"q", Type::Int()}}))}}))
            .ok());
    ASSERT_TRUE(db_->CreateTable("T", Type::Tuple({{"k2", Type::Int()},
                                                   {"w", Type::Int()}}))
                    .ok());
    Rng rng(71);
    for (int i = 0; i < 30; ++i) {
      std::vector<Value> items;
      for (int j = 0, n = static_cast<int>(rng.Uniform(0, 5)); j < n; ++j) {
        items.push_back(
            Value::Tuple({Field("k", Value::Int(rng.Uniform(0, 19))),
                          Field("q", Value::Int(rng.Uniform(1, 9)))}));
      }
      ASSERT_TRUE(
          db_->Insert("S", Value::Tuple({Field("id", Value::Int(i)),
                                         Field("items",
                                               Value::Set(items))}))
              .ok());
    }
    for (int i = 0; i < 15; ++i) {
      ASSERT_TRUE(
          db_->Insert("T", Value::Tuple({Field("k2", Value::Int(i)),
                                         Field("w", Value::Int(i * 10))}))
              .ok());
    }
  }

  /// α[z : z except (items = z.items ⋈_{v,w : v.k = w.k2} T)](S)
  ExprPtr Pattern() {
    ExprPtr join = Expr::Join(
        Expr::Access(Expr::Var("z"), "items"), Expr::Table("T"), "v", "w",
        Expr::Eq(Expr::Access(Expr::Var("v"), "k"),
                 Expr::Access(Expr::Var("w"), "k2")));
    return Expr::Map(
        "z", Expr::ExceptOp(Expr::Var("z"), {"items"}, {join}),
        Expr::Table("S"));
  }

  std::unique_ptr<Database> db_;
};

TEST_F(PnhlFastPathTest, FastPathMatchesGenericEvaluation) {
  EvalOptions generic;
  generic.enable_pnhl = false;
  Value expected = EvalExpr(*db_, Pattern(), generic);

  EvalOptions fast;  // enable_pnhl defaults to true
  Evaluator ev(*db_, fast);
  Result<Value> actual = ev.Eval(Pattern());
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  EXPECT_EQ(expected, *actual);
  EXPECT_GT(ev.stats().pnhl_partitions, 0u) << "fast path did not engage";
}

TEST_F(PnhlFastPathTest, MemoryBudgetPartitionsAndStaysCorrect) {
  EvalOptions generic;
  generic.enable_pnhl = false;
  Value expected = EvalExpr(*db_, Pattern(), generic);
  EvalOptions tiny;
  tiny.pnhl_memory_budget = 256;
  Evaluator ev(*db_, tiny);
  Result<Value> actual = ev.Eval(Pattern());
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(expected, *actual);
  EXPECT_GT(ev.stats().pnhl_partitions, 1u);
}

TEST_F(PnhlFastPathTest, SameNamedKeysGetNaturalJoinSemantics) {
  // S2.items elements use key name k2 — identical to T's key. The plain
  // ADL join would fail on the name conflict; the fast path implements
  // the paper's natural join (key kept once).
  ASSERT_TRUE(
      db_->CreateTable(
             "S2",
             Type::Tuple(
                 {{"id", Type::Int()},
                  {"items", Type::Set(Type::Tuple({{"k2", Type::Int()}}))}}))
          .ok());
  ASSERT_TRUE(
      db_->Insert("S2",
                  Value::Tuple(
                      {Field("id", Value::Int(0)),
                       Field("items",
                             Value::Set({Value::Tuple(
                                 {Field("k2", Value::Int(3))})}))}))
          .ok());
  ExprPtr join = Expr::Join(
      Expr::Access(Expr::Var("z"), "items"), Expr::Table("T"), "v", "w",
      Expr::Eq(Expr::Access(Expr::Var("v"), "k2"),
               Expr::Access(Expr::Var("w"), "k2")));
  ExprPtr pattern = Expr::Map(
      "z", Expr::ExceptOp(Expr::Var("z"), {"items"}, {join}),
      Expr::Table("S2"));

  Value v = EvalExpr(*db_, pattern);
  ASSERT_EQ(v.set_size(), 1u);
  const Value& items = *v.elements()[0].FindField("items");
  ASSERT_EQ(items.set_size(), 1u);
  // (k2 = 3) ∘ (w = 30) with k2 once.
  EXPECT_EQ(items.elements()[0].tuple_size(), 2u);
  EXPECT_EQ(items.elements()[0].FindField("w")->int_value(), 30);
}

TEST_F(PnhlFastPathTest, NonMatchingShapesUseTheGenericPath) {
  // A map whose body is not the except-join pattern must not engage the
  // fast path (and must still work).
  ExprPtr other = Expr::Map("z", Expr::Access(Expr::Var("z"), "id"),
                            Expr::Table("S"));
  Evaluator ev(*db_);
  Result<Value> r = ev.Eval(other);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ev.stats().pnhl_partitions, 0u);

  // A correlated join predicate (uses z) must also fall back.
  ExprPtr corr_join = Expr::Join(
      Expr::Access(Expr::Var("z"), "items"), Expr::Table("T"), "v", "w",
      Expr::And(Expr::Eq(Expr::Access(Expr::Var("v"), "k"),
                         Expr::Access(Expr::Var("w"), "k2")),
                Expr::Bin(BinOp::kGt, Expr::Access(Expr::Var("z"), "id"),
                          Expr::Const(Value::Int(-1)))));
  ExprPtr pattern = Expr::Map(
      "z", Expr::ExceptOp(Expr::Var("z"), {"items"}, {corr_join}),
      Expr::Table("S"));
  Evaluator ev2(*db_);
  Result<Value> r2 = ev2.Eval(pattern);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(ev2.stats().pnhl_partitions, 0u);
}

TEST_F(PnhlFastPathTest, EmptySetAttributesSurvive) {
  EvalOptions fast;
  Value v = EvalExpr(*db_, Pattern(), fast);
  // Every S tuple is present, including those whose items set is empty.
  EXPECT_EQ(v.set_size(),
            EvalExpr(*db_, Expr::Table("S")).set_size());
}

}  // namespace
}  // namespace n2j
