// Every failure the fuzzer has found, checked in as a regression. The
// corpus files under tests/corpus/ replay the exact generated query
// against the exact generated database (reconstructed from the recorded
// table seed) and must now agree across the full default config matrix.
// The hand-minimized cases distill the shared root cause: a rewrite may
// fold a subplan to the untyped empty-set constant (Simplify-FalseSelect),
// and every downstream operator must keep typechecking and evaluating.

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "adl/type.h"
#include "adl/value.h"
#include "fuzz/oracle.h"
#include "storage/database.h"
#include "storage/datagen.h"

namespace n2j {
namespace fuzz {
namespace {

struct CorpusCase {
  std::string file;
  uint64_t tables_seed = 0;
  std::string query;
};

std::vector<CorpusCase> LoadCorpus() {
  std::vector<CorpusCase> cases;
  for (const auto& entry :
       std::filesystem::directory_iterator(N2J_CORPUS_DIR)) {
    if (entry.path().extension() != ".oosql") continue;
    CorpusCase c;
    c.file = entry.path().filename().string();
    std::ifstream in(entry.path());
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("# tables-seed:", 0) == 0) {
        c.tables_seed = std::strtoull(line.substr(14).c_str(), nullptr, 10);
      } else if (!line.empty() && line[0] != '#') {
        if (!c.query.empty()) c.query += ' ';
        c.query += line;
      }
    }
    cases.push_back(std::move(c));
  }
  std::sort(cases.begin(), cases.end(),
            [](const CorpusCase& a, const CorpusCase& b) {
              return a.file < b.file;
            });
  return cases;
}

TEST(FuzzRegressionTest, CorpusIsNonEmpty) {
  EXPECT_GE(LoadCorpus().size(), 7u);
}

TEST(FuzzRegressionTest, CorpusQueriesMatchAcrossTheDefaultMatrix) {
  for (const CorpusCase& c : LoadCorpus()) {
    ASSERT_NE(c.tables_seed, 0u) << c.file << ": missing '# tables-seed:'";
    ASSERT_FALSE(c.query.empty()) << c.file << ": missing query text";
    FuzzTablesConfig config;
    config.seed = c.tables_seed;
    auto db = std::make_unique<Database>();
    ASSERT_TRUE(AddRandomFuzzTables(db.get(), config).ok()) << c.file;
    OracleReport r =
        RunDifferentialOracle(*db, c.query, DefaultConfigMatrix());
    EXPECT_EQ(r.status, OracleStatus::kOk)
        << c.file << "\nquery: " << c.query << "\n" << r.detail;
  }
}

std::unique_ptr<Database> TinySetDb() {
  auto db = std::make_unique<Database>();
  TypePtr row = Type::Tuple(
      {{"a", Type::Int()},
       {"b", Type::Int()},
       {"c", Type::Set(Type::Tuple({{"d", Type::Int()}}))}});
  EXPECT_TRUE(db->CreateTable("F0", row).ok());
  auto mk = [](int64_t a, int64_t b, std::vector<int64_t> ds) {
    std::vector<Value> c;
    c.reserve(ds.size());
    for (int64_t d : ds) c.push_back(Value::Tuple({Field("d", Value::Int(d))}));
    return Value::Tuple({Field("a", Value::Int(a)), Field("b", Value::Int(b)),
                         Field("c", Value::Set(std::move(c)))});
  };
  EXPECT_TRUE(db->Insert("F0", mk(1, 2, {1})).ok());
  EXPECT_TRUE(db->Insert("F0", mk(2, 1, {})).ok());
  EXPECT_TRUE(db->Insert("F0", mk(3, 3, {1, 2})).ok());
  return db;
}

TEST(FuzzRegressionTest, FalseSelectFoldsStayWellTyped) {
  auto db = TinySetDb();
  const char* queries[] = {
      // Whole query folds to the empty set.
      "select v0.a from v0 in F0 where false",
      // The correlated subselect becomes a nestjoin whose left input
      // folds to the empty set.
      "select (p = v0.a, q = (select v1.b from v1 in F0 where v1.a = v0.a)) "
      "from v0 in F0 where false",
      // A range variable is bound to the empty set's `any` element and
      // fields are accessed through it.
      "select v1.a from v1 in (select v0 from v0 in F0 where false) "
      "where (exists v2 in v1.c : v2.d = v1.a)",
      // A quantifier ranges over the folded empty set (semijoin with an
      // empty right input).
      "select v0.a from v0 in F0 "
      "where (exists v1 in (select w from w in F0 where false) : "
      "v1.a = v0.a)",
  };
  for (const char* q : queries) {
    OracleReport r = RunDifferentialOracle(*db, q, DefaultConfigMatrix());
    EXPECT_EQ(r.status, OracleStatus::kOk) << q << "\n" << r.detail;
  }
}

TEST(FuzzRegressionTest, ParenthesizedSetEqualityIsNotATupleLiteral) {
  // `(W = ...)` parses as a tuple literal; the generator (and users)
  // must spell a bare-identifier set equality as `((W) = ...)`.
  auto db = TinySetDb();
  OracleReport r = RunDifferentialOracle(
      *db,
      "select v0.a from v0 in F0 where ((W) = v0.c) with W = {(d = 1)}",
      DefaultConfigMatrix());
  EXPECT_EQ(r.status, OracleStatus::kOk) << r.detail;
}

}  // namespace
}  // namespace fuzz
}  // namespace n2j
