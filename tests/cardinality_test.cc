// Property tests for the statistics module and cardinality estimator
// (ISSUE 6): estimates must track trace-span actuals within a Q-error
// bound on datagen-generated extents — including set-valued attribute
// fanout — and Database::Append must invalidate extent statistics the
// same way it invalidates Table::AsSetValue() memoization.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "adl/type.h"
#include "adl/value.h"
#include "core/engine.h"
#include "obs/trace.h"
#include "opt/optimizer.h"
#include "stats/cardinality.h"
#include "stats/stats.h"
#include "storage/datagen.h"

namespace n2j {
namespace {

/// Smoothed Q-error: symmetric ratio of estimate to actual with +1
/// smoothing so empty results stay comparable.
double QError(double est, double act) {
  double e = est + 1.0, a = act + 1.0;
  return e > a ? e / a : a / e;
}

/// Worst Q-error over the trace's estimated operators. Spans sharing
/// (op, detail) aggregate first — a correlated subplan node re-executes
/// per outer row with the same per-node estimate, so summing both sides
/// compares like with like (the way EXPLAIN ANALYZE aggregates loops).
double WorstSpanQError(const TraceCollector& tc, std::string* worst_label) {
  struct Cell {
    double est = 0.0;
    double act = 0.0;
  };
  std::map<std::string, Cell> cells;
  for (const TraceSpan& s : tc.spans()) {
    if (s.est_rows < 0) continue;
    Cell& c = cells[s.op + " [" + s.detail + "]"];
    c.est += s.est_rows;
    c.act += static_cast<double>(s.rows_out);
  }
  double worst = 1.0;
  for (const auto& [label, c] : cells) {
    double q = QError(c.est, c.act);
    if (q > worst) {
      worst = q;
      if (worst_label != nullptr) {
        *worst_label = label + " est=" + std::to_string(c.est) +
                       " act=" + std::to_string(c.act);
      }
    }
  }
  return worst;
}

struct WorkloadShape {
  const char* tag;
  const char* oosql;
};

const WorkloadShape kShapes[] = {
    {"fig1", "select x from x in X where exists y in Y : y.a = x.a"},
    {"fig3",
     "select (a = x.a, ys = (select y.e from y in Y where y.a = x.a)) "
     "from x in X"},
    {"q4",
     "select s.eid from s in SUPPLIER where "
     "exists z in s.parts : not exists p in PART : z.pid = p.pid"},
    {"q6",
     "select x from x in X where x.c subseteq "
     "(select (d = y.e) from y in Y where y.a = x.a)"},
};

struct DatagenCase {
  const char* name;
  SupplierPartConfig sp;
  XYConfig xy;
};

std::vector<DatagenCase> MakeCases() {
  std::vector<DatagenCase> cases;
  {
    DatagenCase c;
    c.name = "uniform";
    c.sp.seed = 3;
    c.sp.num_parts = 200;
    c.sp.num_suppliers = 50;
    c.xy.seed = 5;
    c.xy.x_rows = 200;
    c.xy.y_rows = 200;
    c.xy.key_domain = 200;
    cases.push_back(c);
  }
  {
    DatagenCase c;
    c.name = "skewed-fanout";
    c.sp.seed = 7;
    c.sp.num_parts = 200;
    c.sp.num_suppliers = 50;
    c.sp.parts_per_supplier = 12;
    c.sp.skew = 1.2;
    c.xy.seed = 9;
    c.xy.x_rows = 200;
    c.xy.y_rows = 200;
    c.xy.key_domain = 25;  // duplicated keys
    c.xy.max_set_size = 8;
    cases.push_back(c);
  }
  {
    DatagenCase c;
    c.name = "low-match";
    c.sp.seed = 11;
    c.sp.num_parts = 200;
    c.sp.num_suppliers = 50;
    c.sp.match_fraction = 0.25;
    c.xy.seed = 13;
    c.xy.x_rows = 200;
    c.xy.y_rows = 200;
    c.xy.key_domain = 1600;  // most probes miss
    cases.push_back(c);
  }
  {
    DatagenCase c;
    c.name = "dense-sets";
    c.sp.seed = 17;
    c.sp.num_parts = 200;
    c.sp.num_suppliers = 50;
    c.sp.parts_per_supplier = 16;
    c.xy.seed = 19;
    c.xy.x_rows = 200;
    c.xy.y_rows = 200;
    c.xy.key_domain = 200;
    c.xy.max_set_size = 10;
    c.xy.empty_set_prob = 0.4;
    cases.push_back(c);
  }
  return cases;
}

std::unique_ptr<Database> MakeCaseDb(const DatagenCase& c) {
  auto db = MakeSupplierPartDatabase(c.sp);
  EXPECT_TRUE(AddRandomXY(db.get(), c.xy).ok());
  return db;
}

// Acceptance bound: EXPLAIN's estimated-vs-actual rows stay within
// Q-error <= 4 on the paper workloads, every datagen case.
TEST(CardinalityQError, WorkloadSpansWithinBound) {
  for (const DatagenCase& c : MakeCases()) {
    auto db = MakeCaseDb(c);
    TraceCollector collector;
    EvalOptions eval_opts;
    eval_opts.trace = &collector;
    PlannerOptions popts;
    popts.strategy = PlanStrategy::kCost;
    QueryEngine engine(db.get(), RewriteOptions(), eval_opts, popts);
    for (const WorkloadShape& shape : kShapes) {
      SCOPED_TRACE(std::string(c.name) + "/" + shape.tag);
      Result<QueryReport> r = engine.Run(shape.oosql);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      ASSERT_NE(r->plan, nullptr);
      std::string worst_label;
      double worst = WorstSpanQError(collector, &worst_label);
      EXPECT_LE(worst, 4.0) << "worst span: " << worst_label << "\n"
                            << r->plan->Describe();
    }
  }
}

// The estimator's set-attribute fanout: |flatten(map s.parts)| is
// rows × avg_fanout, which the stats module measures exactly.
TEST(CardinalityQError, SetAttributeFanout) {
  for (const DatagenCase& c : MakeCases()) {
    SCOPED_TRACE(c.name);
    auto db = MakeCaseDb(c);
    ExprPtr flat = Expr::Flatten(
        Expr::Map("s", Expr::Access(Expr::Var("s"), "parts"),
                  Expr::Table("SUPPLIER")));
    CardinalityEstimator est(*db);
    double estimated = est.Estimate(flat).rows;
    ASSERT_GE(estimated, 0.0);
    Evaluator ev(*db);
    Result<Value> v = ev.Eval(flat);
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    // Flatten de-duplicates (set semantics): the estimate must cap the
    // multiset element count (rows × avg_fanout) at the measured
    // distinct element count, so it can never exceed the raw element
    // count and must track the flattened size even under heavy skew.
    auto es = db->stats().Get(*db, "SUPPLIER");
    ASSERT_NE(es, nullptr);
    const AttrStats* parts = es->Find("parts");
    ASSERT_NE(parts, nullptr);
    EXPECT_TRUE(parts->set_valued);
    EXPECT_LE(estimated, static_cast<double>(parts->element_count) + 0.5);
    EXPECT_LE(QError(estimated, static_cast<double>(v->set_size())), 4.0);
  }
}

// Equi-join output estimates: X ⋈-family ops on generated keys.
TEST(CardinalityQError, SemiJoinEstimate) {
  for (const DatagenCase& c : MakeCases()) {
    SCOPED_TRACE(c.name);
    auto db = MakeCaseDb(c);
    ExprPtr semi =
        Expr::SemiJoin(Expr::Table("X"), Expr::Table("Y"), "x", "y",
                       Expr::Eq(Expr::Access(Expr::Var("y"), "a"),
                                Expr::Access(Expr::Var("x"), "a")));
    CardinalityEstimator est(*db);
    double estimated = est.Estimate(semi).rows;
    ASSERT_GE(estimated, 0.0);
    Evaluator ev(*db);
    Result<Value> v = ev.Eval(semi);
    ASSERT_TRUE(v.ok());
    EXPECT_LE(QError(estimated, static_cast<double>(v->set_size())), 4.0)
        << "est=" << estimated << " act=" << v->set_size();
  }
}

// ---------------------------------------------------------------------
// Stale-stats regression (ISSUE 6 satellite): Append must invalidate
// extent statistics exactly like it invalidates AsSetValue memoization.
// ---------------------------------------------------------------------

void InsertRows(Database* db, const std::string& table, int from, int to) {
  for (int i = from; i < to; ++i) {
    ASSERT_TRUE(db->Insert(table,
                           Value::Tuple({Field("k", Value::Int(i % 97)),
                                         Field("v", Value::Int(i))}))
                    .ok());
  }
}

TEST(StaleStats, AppendRefreshesCatalogWithoutAnalyze) {
  Database db;
  ASSERT_TRUE(db.CreateTable("T", Type::Tuple({{"k", Type::Int()},
                                               {"v", Type::Int()}}))
                  .ok());
  InsertRows(&db, "T", 0, 4);
  auto before = db.stats().Get(db, "T");
  ASSERT_NE(before, nullptr);
  EXPECT_EQ(before->row_count, 4u);

  // Bulk append — the catalog entry must refresh lazily on next Get,
  // with no explicit Analyze call.
  InsertRows(&db, "T", 4, 2000);
  auto after = db.stats().Get(db, "T");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->row_count, 2000u);
  const AttrStats* k = after->Find("k");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->distinct, 97u);
}

TEST(StaleStats, PlanChoiceTracksBulkAppend) {
  Database db;
  ASSERT_TRUE(db.CreateTable("L", Type::Tuple({{"k", Type::Int()},
                                               {"v", Type::Int()}}))
                  .ok());
  ASSERT_TRUE(db.CreateTable("R", Type::Tuple({{"k2", Type::Int()},
                                               {"v2", Type::Int()}}))
                  .ok());
  auto insert = [&](const std::string& table, const char* kf, const char* vf,
                    int from, int to) {
    for (int i = from; i < to; ++i) {
      ASSERT_TRUE(db.Insert(table,
                            Value::Tuple({Field(kf, Value::Int(i % 97)),
                                          Field(vf, Value::Int(i))}))
                      .ok());
    }
  };
  insert("L", "k", "v", 0, 2);
  insert("R", "k2", "v2", 0, 2);

  ExprPtr join = Expr::Join(Expr::Table("L"), Expr::Table("R"), "l", "r",
                            Expr::Eq(Expr::Access(Expr::Var("l"), "k"),
                                     Expr::Access(Expr::Var("r"), "k2")));
  PlannerOptions popts;
  popts.strategy = PlanStrategy::kCost;
  Planner planner(db, popts);

  auto annotation = [&]() -> PlanAnnotation {
    Result<PhysicalPlan> pp = planner.Plan(join);
    EXPECT_TRUE(pp.ok());
    const PlanAnnotation* pa = pp->annotations.Find(join.get());
    EXPECT_NE(pa, nullptr);
    return pa == nullptr ? PlanAnnotation() : *pa;
  };

  PlanAnnotation small = annotation();
  // 2×2 rows: estimates must reflect the tiny extent.
  EXPECT_LE(small.est_rows, 8.0);

  insert("L", "k", "v", 2, 2000);
  insert("R", "k2", "v2", 2, 2000);
  PlanAnnotation large = annotation();
  // Stale statistics would still claim ~2 rows and keep pricing for the
  // tiny inputs; the refreshed catalog must see the bulk append and
  // switch to a scalable algorithm.
  EXPECT_GE(large.est_rows, 1000.0);
  EXPECT_NE(large.algorithm, JoinAlgorithm::kNestedLoop);
  EXPECT_NE(large.algorithm, JoinAlgorithm::kAuto);
}

}  // namespace
}  // namespace n2j
