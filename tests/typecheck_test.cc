#include "adl/typecheck.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace n2j {
namespace {

class TypecheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testutil::SmallSupplierDb();
    ASSERT_TRUE(AddRandomXY(db_.get(), XYConfig()).ok());
    checker_ = std::make_unique<TypeChecker>(db_->schema(), db_.get());
  }

  TypePtr Infer(const ExprPtr& e) {
    Result<TypePtr> r = checker_->Infer(e);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) std::abort();
    return *r;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<TypeChecker> checker_;
};

TEST_F(TypecheckTest, TableTypes) {
  TypePtr part = Infer(Expr::Table("PART"));
  ASSERT_TRUE(part->is_set());
  EXPECT_TRUE(part->element()->FindField("price")->is_int());
  TypePtr x = Infer(Expr::Table("X"));
  EXPECT_TRUE(x->element()->FindField("c")->is_set());
  EXPECT_FALSE(checker_->Infer(Expr::Table("NOPE")).ok());
}

TEST_F(TypecheckTest, IteratorsBindElementTypes) {
  // α[p : p.price](PART) : { int }
  TypePtr t = Infer(Expr::Map("p", Expr::Access(Expr::Var("p"), "price"),
                              Expr::Table("PART")));
  EXPECT_TRUE(t->is_set());
  EXPECT_TRUE(t->element()->is_int());
  // σ preserves the input type.
  TypePtr s = Infer(Expr::Select(
      "p", Expr::Eq(Expr::Access(Expr::Var("p"), "color"),
                    Expr::Const(Value::String("red"))),
      Expr::Table("PART")));
  EXPECT_TRUE(s->Equals(*Infer(Expr::Table("PART"))));
}

TEST_F(TypecheckTest, JoinTypesConcatFields) {
  ExprPtr join = Expr::Join(
      Expr::Table("X"), Expr::Table("Y2"), "x", "y",
      Expr::Eq(Expr::Access(Expr::Var("x"), "a"),
               Expr::Access(Expr::Var("y"), "b")));
  // X and Y share field 'a' → concat conflict must be a type error.
  ASSERT_TRUE(db_->CreateTable("Y2", Type::Tuple({{"b", Type::Int()}})).ok());
  Result<TypePtr> conflict = checker_->Infer(Expr::Join(
      Expr::Table("X"), Expr::Table("Y"), "x", "y", Expr::True()));
  EXPECT_FALSE(conflict.ok());
  TypePtr ok = Infer(join);
  EXPECT_NE(ok->element()->FindField("b"), nullptr);
  EXPECT_NE(ok->element()->FindField("c"), nullptr);
}

TEST_F(TypecheckTest, SemiAntiJoinPreserveLeftType) {
  ExprPtr semi = Expr::SemiJoin(Expr::Table("X"), Expr::Table("Y"), "x",
                                "y", Expr::True());
  EXPECT_TRUE(Infer(semi)->Equals(*Infer(Expr::Table("X"))));
  ExprPtr anti = Expr::AntiJoin(Expr::Table("X"), Expr::Table("Y"), "x",
                                "y", Expr::True());
  EXPECT_TRUE(Infer(anti)->Equals(*Infer(Expr::Table("X"))));
}

TEST_F(TypecheckTest, NestJoinAddsSetAttribute) {
  ExprPtr nj = Expr::NestJoin(Expr::Table("X"), Expr::Table("Y"), "x", "y",
                              Expr::True(), "ys");
  TypePtr t = Infer(nj);
  TypePtr ys = t->element()->FindField("ys");
  ASSERT_NE(ys, nullptr);
  ASSERT_TRUE(ys->is_set());
  EXPECT_NE(ys->element()->FindField("e"), nullptr);
  // Inner function changes the collected type.
  ExprPtr nj2 = Expr::NestJoin(Expr::Table("X"), Expr::Table("Y"), "x", "y",
                               Expr::True(), "es",
                               Expr::Access(Expr::Var("y"), "e"));
  EXPECT_TRUE(
      Infer(nj2)->element()->FindField("es")->element()->is_int());
}

TEST_F(TypecheckTest, NestAndUnnestTypes) {
  ExprPtr nest = Expr::Nest(Expr::Table("Y"), {"e"}, "es");
  TypePtr t = Infer(nest);
  EXPECT_NE(t->element()->FindField("a"), nullptr);
  EXPECT_TRUE(t->element()->FindField("es")->is_set());
  ExprPtr unnest = Expr::Unnest(Expr::Table("X"), "c");
  TypePtr u = Infer(unnest);
  EXPECT_NE(u->element()->FindField("d"), nullptr);
  EXPECT_NE(u->element()->FindField("a"), nullptr);
  EXPECT_EQ(u->element()->FindField("c"), nullptr);
}

TEST_F(TypecheckTest, SchemaOfComputesSch) {
  TypeEnv env;
  Result<std::vector<std::string>> sch =
      checker_->SchemaOf(Expr::Table("PART"), env);
  ASSERT_TRUE(sch.ok());
  EXPECT_EQ(*sch, (std::vector<std::string>{"pid", "pname", "price",
                                            "color"}));
  EXPECT_FALSE(
      checker_->SchemaOf(Expr::Const(Value::Int(3)), env).ok());
}

TEST_F(TypecheckTest, DerefAndRefAccess) {
  // Accessing sname through a Ref(Supplier) attribute.
  ExprPtr e = Expr::Map(
      "d",
      Expr::Access(Expr::Access(Expr::Var("d"), "supplier"), "sname"),
      Expr::Table("DELIVERY"));
  TypePtr t = Infer(e);
  EXPECT_TRUE(t->element()->is_string());
  // Explicit deref node.
  TypePtr obj = Infer(Expr::Deref(
      Expr::Const(Value::MakeOidValue(MakeOid(1, 0))), "Part"));
  EXPECT_TRUE(obj->is_tuple());
}

TEST_F(TypecheckTest, QuantifierAndAggregateTypes) {
  ExprPtr q = Expr::Quant(
      QuantKind::kExists, "p", Expr::Table("PART"),
      Expr::Eq(Expr::Access(Expr::Var("p"), "color"),
               Expr::Const(Value::String("red"))));
  EXPECT_TRUE(Infer(q)->is_bool());
  EXPECT_TRUE(
      Infer(Expr::Agg(AggKind::kCount, Expr::Table("PART")))->is_int());
  EXPECT_TRUE(Infer(Expr::Agg(
                  AggKind::kAvg,
                  Expr::Map("p", Expr::Access(Expr::Var("p"), "price"),
                            Expr::Table("PART"))))
                  ->is_double());
}

TEST_F(TypecheckTest, TypeErrorsAreReported) {
  // Arithmetic on strings.
  EXPECT_FALSE(checker_
                   ->Infer(Expr::Bin(BinOp::kAdd,
                                     Expr::Const(Value::String("a")),
                                     Expr::Const(Value::Int(1))))
                   .ok());
  // Flatten of a non-nested set.
  EXPECT_FALSE(checker_->Infer(Expr::Flatten(Expr::Table("PART"))).ok());
  // Unnest of an atomic attribute.
  EXPECT_FALSE(
      checker_->Infer(Expr::Unnest(Expr::Table("PART"), "price")).ok());
  // Unbound variable.
  EXPECT_FALSE(checker_->Infer(Expr::Var("nope")).ok());
}

TEST_F(TypecheckTest, TypeOfValueDerivation) {
  EXPECT_TRUE(TypeOfValue(Value::Int(1))->is_int());
  EXPECT_TRUE(TypeOfValue(Value::EmptySet())->is_set());
  EXPECT_TRUE(TypeOfValue(Value::EmptySet())->element()->is_any());
  Value t = Value::Tuple({Field("a", Value::Int(1))});
  EXPECT_TRUE(TypeOfValue(t)->is_tuple());
  EXPECT_TRUE(TypeOfValue(Value::Set({t}))->element()->is_tuple());
}

TEST_F(TypecheckTest, TranslatedQueriesTypecheckConsistently) {
  // Translator's type agrees with the ADL checker's type.
  Translator tr(db_->schema(), db_.get());
  for (const char* q : {
           "select p.pname from p in PART where p.price > 10",
           "select (n = s.sname, k = count(s.parts)) from s in SUPPLIER",
           "select d.supplier.sname from d in DELIVERY",
       }) {
    Result<TypedExpr> typed = tr.TranslateString(q);
    ASSERT_TRUE(typed.ok()) << q;
    Result<TypePtr> inferred = checker_->Infer(typed->expr);
    ASSERT_TRUE(inferred.ok()) << q << "\n" << inferred.status().ToString();
    EXPECT_TRUE(typed->type->Equals(**inferred)) << q;
  }
}

}  // namespace
}  // namespace n2j
