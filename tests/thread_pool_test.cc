// The morsel-scheduling thread pool behind num_threads > 1.

#include "common/thread_pool.h"

#include <atomic>
#include <stdexcept>

#include <gtest/gtest.h>

namespace n2j {
namespace {

TEST(ThreadPoolTest, StartupAndShutdown) {
  // Construction spawns workers; destruction joins them — repeatedly,
  // including with nothing ever submitted.
  for (int workers : {1, 2, 8}) {
    ThreadPool pool(workers);
    EXPECT_EQ(pool.num_workers(), workers);
  }
}

TEST(ThreadPoolTest, ClampsWorkerCountToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 1);
  ThreadPool neg(-3);
  EXPECT_EQ(neg.num_workers(), 1);
}

TEST(ThreadPoolTest, WaitWithNothingSubmittedReturns) {
  ThreadPool pool(4);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitRethrowsTaskException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, RunMorselsCoversEveryMorselExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  Status s = pool.RunMorsels(hits.size(), [&](int worker, size_t m) {
    EXPECT_GE(worker, 0);
    EXPECT_LT(worker, 4);
    hits[m].fetch_add(1);
    return Status::OK();
  });
  ASSERT_TRUE(s.ok());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, RunMorselsZeroMorselsIsOk) {
  ThreadPool pool(2);
  bool ran = false;
  Status s = pool.RunMorsels(0, [&](int, size_t) {
    ran = true;
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, RunMorselsReportsLowestFailingMorsel) {
  // Error reporting is deterministic: regardless of which worker hits
  // which morsel first, the lowest-numbered failure wins — the same
  // error a serial left-to-right loop would report first.
  ThreadPool pool(8);
  for (int trial = 0; trial < 20; ++trial) {
    Status s = pool.RunMorsels(64, [&](int, size_t m) {
      if (m % 7 == 3) {
        return Status::Internal("failed at " + std::to_string(m));
      }
      return Status::OK();
    });
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.message(), "failed at 3");
  }
}

TEST(ThreadPoolTest, RunMorselsConvertsBodyExceptionToStatus) {
  ThreadPool pool(2);
  Status s = pool.RunMorsels(4, [&](int, size_t m) -> Status {
    if (m == 1) throw std::runtime_error("kaput");
    return Status::OK();
  });
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("kaput"), std::string::npos);
}

TEST(ThreadPoolTest, MorselMathCoversRangeExactly) {
  for (size_t n : {0u, 1u, 2u, 7u, 64u, 1000u}) {
    for (size_t ms : {1u, 3u, 64u, 2000u}) {
      size_t num = NumMorsels(n, ms);
      size_t covered = 0;
      size_t expected_begin = 0;
      for (size_t m = 0; m < num; ++m) {
        MorselRange r = MorselAt(n, ms, m);
        EXPECT_EQ(r.begin, expected_begin);
        EXPECT_LE(r.end, n);
        EXPECT_LT(r.begin, r.end);  // no empty morsels
        covered += r.end - r.begin;
        expected_begin = r.end;
      }
      EXPECT_EQ(covered, n) << "n=" << n << " morsel_size=" << ms;
    }
  }
}

TEST(ThreadPoolTest, PickMorselSizeDegradesToSingleElements) {
  // Tiny inputs must still split into several morsels so the parallel
  // code paths get exercised by fuzzer-sized data.
  EXPECT_EQ(PickMorselSize(3, 4), 1u);
  EXPECT_EQ(PickMorselSize(100, 4), 3u);
  // Huge inputs cap at 1024 elements per morsel.
  EXPECT_EQ(PickMorselSize(1 << 20, 2), 1024u);
}

}  // namespace
}  // namespace n2j
