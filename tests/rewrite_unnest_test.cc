// Optimization option 1 (Section 4): unnesting of set-valued attributes
// with µ, driven by Example Query 4 (referential integrity).

#include <gtest/gtest.h>

#include "adl/analysis.h"
#include "tests/test_util.h"

namespace n2j {
namespace {

using testutil::CheckEquivalence;
using testutil::HasNestedBaseTable;
using testutil::TranslateOrDie;

bool ContainsKind(const ExprPtr& e, ExprKind kind) {
  bool found = false;
  VisitPreOrder(e, [&](const ExprPtr& n) {
    if (n->kind() == kind) found = true;
  });
  return found;
}

class UnnestAttrTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SupplierPartConfig config;
    config.seed = 11;
    config.num_parts = 30;
    config.num_suppliers = 15;
    config.parts_per_supplier = 4;
    config.match_fraction = 0.7;  // ensure RI violations exist
    db_ = MakeSupplierPartDatabase(config);
  }
  std::unique_ptr<Database> db_;
};

TEST_F(UnnestAttrTest, ExampleQuery4BecomesUnnestAntijoin) {
  // π_eid(σ[s : ∃z ∈ s.parts · ¬∃p ∈ PART · z = p[pid]](SUPPLIER))
  //   ⇒ π_eid(µ_parts(SUPPLIER) ▷ PART)
  ExprPtr e = TranslateOrDie(
      *db_,
      "select s.eid from s in SUPPLIER where "
      "exists z in s.parts : not exists p in PART : z.pid = p.pid");
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("UnnestAttribute")) << r.TraceToString();
  EXPECT_TRUE(r.Fired("Rule1-AntiJoin")) << r.TraceToString();
  EXPECT_TRUE(ContainsKind(r.expr, ExprKind::kUnnest));
  EXPECT_TRUE(ContainsKind(r.expr, ExprKind::kAntiJoin));
  EXPECT_FALSE(HasNestedBaseTable(r.expr));
}

TEST_F(UnnestAttrTest, PositiveExistentialPrefersExchangeOverUnnest) {
  // Example Query 5's shape: suppliers supplying red parts. The ∃∃
  // exchange heuristic moves the base-table quantifier leftmost and a
  // semijoin results — the paper's own plan, with no µ required
  // (relational rewriting has priority over attribute unnesting).
  ExprPtr e = TranslateOrDie(
      *db_,
      "select s.sname from s in SUPPLIER where "
      "exists z in s.parts : exists p in PART : "
      "z.pid = p.pid and p.color = \"red\"");
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("ExchangeQuantifiers")) << r.TraceToString();
  EXPECT_TRUE(r.Fired("Rule1-SemiJoin")) << r.TraceToString();
  EXPECT_FALSE(r.Fired("UnnestAttribute")) << r.TraceToString();
  EXPECT_FALSE(HasNestedBaseTable(r.expr));
}

TEST_F(UnnestAttrTest, BlockedWhenResultNeedsTheAttribute) {
  // The select-clause uses s.parts, so the nest phase cannot be skipped:
  // no µ rewrite.
  ExprPtr e = TranslateOrDie(
      *db_,
      "select (n = s.sname, ps = s.parts) from s in SUPPLIER where "
      "exists z in s.parts : exists p in PART : z.pid = p.pid");
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_FALSE(r.Fired("UnnestAttribute")) << r.TraceToString();
  EXPECT_FALSE(ContainsKind(r.expr, ExprKind::kUnnest));
}

TEST_F(UnnestAttrTest, BlockedForUniversalQuantification) {
  // ∀z ∈ s.parts · φ: losing suppliers with empty part sets would be
  // wrong (∀ over ∅ is true), so option 1 must not fire.
  ExprPtr e = TranslateOrDie(
      *db_,
      "select s.eid from s in SUPPLIER where "
      "forall z in s.parts : exists p in PART : z.pid = p.pid");
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_FALSE(r.Fired("UnnestAttribute")) << r.TraceToString();
}

TEST_F(UnnestAttrTest, BlockedWhenOtherConjunctUsesAttribute) {
  ExprPtr e = TranslateOrDie(
      *db_,
      "select s.eid from s in SUPPLIER where "
      "(exists z in s.parts : exists p in PART : z.pid = p.pid) "
      "and count(s.parts) > 2");
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_FALSE(r.Fired("UnnestAttribute")) << r.TraceToString();
}

TEST_F(UnnestAttrTest, EmptySetSuppliersAreHandledCorrectly) {
  // Suppliers with zero parts: the ∃ is false for them, and µ drops
  // them — both agree (the paper's justification for option 1).
  // Hand-built: one supplier with parts, one without.
  Database db2(MakeSupplierPartSchema());
  Result<Oid> part = db2.NewObject(
      "Part", Value::Tuple({Field("pname", Value::String("p")),
                            Field("price", Value::Int(1)),
                            Field("color", Value::String("red"))}));
  ASSERT_TRUE(part.ok());
  ASSERT_TRUE(db2.NewObject(
                     "Supplier",
                     Value::Tuple(
                         {Field("sname", Value::String("with")),
                          Field("parts",
                                Value::Set({Value::Tuple(
                                    {Field("pid", Value::MakeOidValue(
                                                      *part))})}))}))
                  .ok());
  ASSERT_TRUE(
      db2.NewObject("Supplier",
                    Value::Tuple({Field("sname", Value::String("empty")),
                                  Field("parts", Value::EmptySet())}))
          .ok());
  ExprPtr e = TranslateOrDie(
      db2,
      "select s.sname from s in SUPPLIER where "
      "exists z in s.parts : exists p in PART : z.pid = p.pid");
  RewriteResult r = CheckEquivalence(db2, e);
  Value v = testutil::EvalExpr(db2, r.expr);
  ASSERT_EQ(v.set_size(), 1u);
  EXPECT_EQ(v.elements()[0], Value::String("with"));
}

}  // namespace
}  // namespace n2j
