#include "adl/printer.h"

#include <gtest/gtest.h>

#include "adl/expr.h"

namespace n2j {
namespace {

TEST(PrinterTest, AtomsAndOperators) {
  EXPECT_EQ(AlgebraStr(Expr::Const(Value::Int(5))), "5");
  EXPECT_EQ(AlgebraStr(Expr::Var("x")), "x");
  EXPECT_EQ(AlgebraStr(Expr::Table("PART")), "PART");
  EXPECT_EQ(AlgebraStr(Expr::Eq(Expr::Var("a"), Expr::Var("b"))), "a = b");
  EXPECT_EQ(AlgebraStr(Expr::Bin(BinOp::kIn, Expr::Var("a"),
                                 Expr::Var("s"))),
            "a ∈ s");
  EXPECT_EQ(AlgebraStr(Expr::Not(Expr::Var("p"))), "¬p");
}

TEST(PrinterTest, IteratorsUsePaperNotation) {
  ExprPtr sel = Expr::Select(
      "x", Expr::Eq(Expr::Access(Expr::Var("x"), "a"),
                    Expr::Const(Value::Int(1))),
      Expr::Table("X"));
  EXPECT_EQ(AlgebraStr(sel), "σ[x : x.a = 1](X)");
  ExprPtr map = Expr::Map("x", Expr::Access(Expr::Var("x"), "a"), sel);
  EXPECT_EQ(AlgebraStr(map), "α[x : x.a](σ[x : x.a = 1](X))");
  EXPECT_EQ(AlgebraStr(Expr::Project(Expr::Table("X"), {"a", "b"})),
            "π_{a, b}(X)");
  EXPECT_EQ(AlgebraStr(Expr::Unnest(Expr::Table("X"), "c")), "μ_c(X)");
  EXPECT_EQ(AlgebraStr(Expr::Nest(Expr::Table("Y"), {"e"}, "es")),
            "ν_{e → es}(Y)");
  EXPECT_EQ(AlgebraStr(Expr::Flatten(Expr::Var("s"))), "⋃(s)");
}

TEST(PrinterTest, JoinFamily) {
  ExprPtr pred = Expr::Eq(Expr::Access(Expr::Var("x"), "a"),
                          Expr::Access(Expr::Var("y"), "b"));
  EXPECT_EQ(AlgebraStr(Expr::Join(Expr::Table("X"), Expr::Table("Y"), "x",
                                  "y", pred)),
            "X ⋈_{x,y : x.a = y.b} Y");
  EXPECT_EQ(AlgebraStr(Expr::SemiJoin(Expr::Table("X"), Expr::Table("Y"),
                                      "x", "y", pred)),
            "X ⋉_{x,y : x.a = y.b} Y");
  EXPECT_EQ(AlgebraStr(Expr::AntiJoin(Expr::Table("X"), Expr::Table("Y"),
                                      "x", "y", pred)),
            "X ▷_{x,y : x.a = y.b} Y");
  // Simple nestjoin omits the identity inner function.
  EXPECT_EQ(AlgebraStr(Expr::NestJoin(Expr::Table("X"), Expr::Table("Y"),
                                      "x", "y", pred, "ys")),
            "X ⊣_{x,y : x.a = y.b ; ys} Y");
  // The extended form shows it.
  EXPECT_EQ(AlgebraStr(Expr::NestJoin(Expr::Table("X"), Expr::Table("Y"),
                                      "x", "y", pred, "es",
                                      Expr::Access(Expr::Var("y"), "e"))),
            "X ⊣_{x,y : x.a = y.b ; y.e ; es} Y");
}

TEST(PrinterTest, QuantifiersAndAggregates) {
  ExprPtr q = Expr::Quant(QuantKind::kExists, "y", Expr::Table("Y"),
                          Expr::Eq(Expr::Var("y"), Expr::Var("x")));
  EXPECT_EQ(AlgebraStr(q), "∃y ∈ Y · y = x");
  ExprPtr fa = Expr::Quant(QuantKind::kForall, "z",
                           Expr::Access(Expr::Var("x"), "c"), Expr::True());
  EXPECT_EQ(AlgebraStr(fa), "∀z ∈ x.c · true");
  EXPECT_EQ(AlgebraStr(Expr::Agg(AggKind::kCount, Expr::Table("Y"))),
            "count(Y)");
}

TEST(PrinterTest, PrecedenceParenthesization) {
  // a ∧ (b ∨ c) keeps its parentheses; (a ∧ b) ∨ c prints without extra.
  ExprPtr a = Expr::Var("a");
  ExprPtr b = Expr::Var("b");
  ExprPtr c = Expr::Var("c");
  EXPECT_EQ(AlgebraStr(Expr::And(a, Expr::Or(b, c))), "a ∧ (b ∨ c)");
  EXPECT_EQ(AlgebraStr(Expr::Or(Expr::And(a, b), c)), "a ∧ b ∨ c");
  // Arithmetic under comparison.
  ExprPtr sum = Expr::Bin(BinOp::kAdd, a, b);
  EXPECT_EQ(AlgebraStr(Expr::Bin(BinOp::kLt, sum, c)), "a + b < c");
  EXPECT_EQ(AlgebraStr(Expr::Bin(BinOp::kMul, sum, c)), "(a + b) * c");
}

TEST(PrinterTest, TupleAndSetForms) {
  ExprPtr t = Expr::TupleConstruct(
      {"sname", "n"},
      {Expr::Access(Expr::Var("s"), "sname"), Expr::Const(Value::Int(1))});
  EXPECT_EQ(AlgebraStr(t), "(sname = s.sname, n = 1)");
  EXPECT_EQ(AlgebraStr(Expr::TupleProject(Expr::Var("p"), {"pid"})),
            "p[pid]");
  EXPECT_EQ(AlgebraStr(Expr::SetConstruct(
                {Expr::Const(Value::Int(1)), Expr::Const(Value::Int(2))})),
            "{1, 2}");
  EXPECT_EQ(
      AlgebraStr(Expr::ExceptOp(Expr::Var("x"), {"a"},
                                {Expr::Const(Value::Int(9))})),
      "x except (a = 9)");
}

TEST(PrinterTest, AsciiMode) {
  PrintOptions ascii;
  ascii.unicode = false;
  ExprPtr sel = Expr::Select("x", Expr::True(), Expr::Table("X"));
  EXPECT_EQ(ToAlgebraString(sel, ascii), "select[x : true](X)");
  ExprPtr semi = Expr::SemiJoin(Expr::Table("X"), Expr::Table("Y"), "x",
                                "y", Expr::True());
  EXPECT_EQ(ToAlgebraString(semi, ascii), "X SEMIJOIN_{x,y : true} Y");
}

TEST(PrinterTest, PrettyModeIndentsPlanOperators) {
  PrintOptions pretty;
  pretty.pretty = true;
  ExprPtr plan = Expr::Project(
      Expr::Select(
          "z", Expr::Bin(BinOp::kGt, Expr::Access(Expr::Var("z"), "a"),
                         Expr::Const(Value::Int(0))),
          Expr::SemiJoin(Expr::Table("X"), Expr::Table("Y"), "x", "y",
                         Expr::Eq(Expr::Access(Expr::Var("x"), "a"),
                                  Expr::Access(Expr::Var("y"), "a")))),
      {"a"});
  std::string out = ToAlgebraString(plan, pretty);
  EXPECT_EQ(out,
            "π_{a}\n"
            "  σ[z : z.a > 0]\n"
            "    ⋉_{x,y : x.a = y.a}\n"
            "      X\n"
            "      Y");
  // Scalar expressions stay single-line even in pretty mode.
  EXPECT_EQ(ToAlgebraString(Expr::Eq(Expr::Var("a"), Expr::Var("b")),
                            pretty),
            "a = b");
}

TEST(PrinterTest, PrettyModeLetAndNestJoin) {
  PrintOptions pretty;
  pretty.pretty = true;
  ExprPtr nj = Expr::NestJoin(Expr::Table("X"), Expr::Table("Y"), "x", "y",
                              Expr::True(), "ys");
  ExprPtr let = Expr::Let("v", Expr::Table("Y"), nj);
  std::string out = ToAlgebraString(let, pretty);
  EXPECT_NE(out.find("let v =\n"), std::string::npos) << out;
  EXPECT_NE(out.find("⊣_{x,y : true ; ys}\n"), std::string::npos) << out;
}

TEST(PrinterTest, DerefAndLet) {
  EXPECT_EQ(AlgebraStr(Expr::Deref(Expr::Var("r"), "Part")),
            "deref<Part>(r)");
  EXPECT_EQ(AlgebraStr(Expr::Let("v", Expr::Table("Y"),
                                 Expr::Agg(AggKind::kCount, Expr::Var("v")))),
            "let v = Y in count(v)");
}

}  // namespace
}  // namespace n2j
