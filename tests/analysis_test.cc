#include "adl/analysis.h"

#include <gtest/gtest.h>

#include "adl/printer.h"

namespace n2j {
namespace {

TEST(AnalysisTest, FreeVarsSimple) {
  ExprPtr e = Expr::Bin(BinOp::kEq, Expr::Access(Expr::Var("x"), "a"),
                        Expr::Var("y"));
  std::set<std::string> fv = FreeVars(e);
  EXPECT_EQ(fv, (std::set<std::string>{"x", "y"}));
}

TEST(AnalysisTest, BinderShadowsVariable) {
  // σ[x : x.a = y.b](X) — x bound, y free.
  ExprPtr e = Expr::Select(
      "x",
      Expr::Bin(BinOp::kEq, Expr::Access(Expr::Var("x"), "a"),
                Expr::Access(Expr::Var("y"), "b")),
      Expr::Table("X"));
  EXPECT_EQ(FreeVars(e), (std::set<std::string>{"y"}));
  EXPECT_FALSE(IsFreeIn("x", e));
  EXPECT_TRUE(IsFreeIn("y", e));
}

TEST(AnalysisTest, InputOfIteratorSeesOuterScope) {
  // σ[x : true](x) — the operand x is NOT bound by the selection.
  ExprPtr e = Expr::Select("x", Expr::True(), Expr::Var("x"));
  EXPECT_TRUE(IsFreeIn("x", e));
}

TEST(AnalysisTest, QuantifierBindsOnlyPredicate) {
  // ∃y ∈ x.c · y = z
  ExprPtr e = Expr::Quant(QuantKind::kExists, "y",
                          Expr::Access(Expr::Var("x"), "c"),
                          Expr::Eq(Expr::Var("y"), Expr::Var("z")));
  EXPECT_EQ(FreeVars(e), (std::set<std::string>{"x", "z"}));
}

TEST(AnalysisTest, JoinBindsBothVarsInPredicate) {
  ExprPtr e = Expr::Join(Expr::Table("X"), Expr::Table("Y"), "x", "y",
                         Expr::Eq(Expr::Access(Expr::Var("x"), "a"),
                                  Expr::Access(Expr::Var("y"), "b")));
  EXPECT_TRUE(FreeVars(e).empty());
}

TEST(AnalysisTest, ContainsBaseTable) {
  EXPECT_TRUE(ContainsBaseTable(Expr::Table("X")));
  EXPECT_TRUE(ContainsBaseTable(
      Expr::Select("x", Expr::True(), Expr::Table("X"))));
  EXPECT_FALSE(ContainsBaseTable(Expr::Access(Expr::Var("x"), "c")));
}

TEST(AnalysisTest, SubstituteSimple) {
  ExprPtr e = Expr::Eq(Expr::Var("x"), Expr::Var("y"));
  ExprPtr s = Substitute(e, "x", Expr::Const(Value::Int(1)));
  EXPECT_EQ(AlgebraStr(s), "1 = y");
}

TEST(AnalysisTest, SubstituteRespectsShadowing) {
  // σ[x : x = y](x) — only the operand x is free.
  ExprPtr e = Expr::Select("x", Expr::Eq(Expr::Var("x"), Expr::Var("y")),
                           Expr::Var("x"));
  ExprPtr s = Substitute(e, "x", Expr::Table("T"));
  EXPECT_EQ(s->child(0)->kind(), ExprKind::kGetTable);
  // Bound occurrence unchanged.
  EXPECT_EQ(s->child(1)->child(0)->kind(), ExprKind::kVar);
}

TEST(AnalysisTest, SubstituteAvoidsCapture) {
  // Substituting y := x into σ[x : v = y](T) must not capture: the
  // binder x must be renamed first.
  ExprPtr e = Expr::Select("x", Expr::Eq(Expr::Var("x"), Expr::Var("y")),
                           Expr::Table("T"));
  ExprPtr s = Substitute(e, "y", Expr::Var("x"));
  // After substitution the predicate compares the (renamed) bound var
  // with the free x.
  EXPECT_NE(s->var(), "x");
  EXPECT_TRUE(IsFreeIn("x", s));
}

TEST(AnalysisTest, FreshVarAvoidsCollisions) {
  ExprPtr e = Expr::Select("x", Expr::Eq(Expr::Var("x"), Expr::Var("x1")),
                           Expr::Table("T"));
  std::string fresh = FreshVar("x", e);
  EXPECT_NE(fresh, "x");
  EXPECT_NE(fresh, "x1");
}

TEST(AnalysisTest, SplitConjunctsFlattensAnds) {
  ExprPtr a = Expr::Var("a");
  ExprPtr b = Expr::Var("b");
  ExprPtr c = Expr::Var("c");
  std::vector<ExprPtr> cs = SplitConjuncts(Expr::And(Expr::And(a, b), c));
  ASSERT_EQ(cs.size(), 3u);
  EXPECT_EQ(cs[0]->name(), "a");
  EXPECT_EQ(cs[2]->name(), "c");
  // Non-and predicates come back as a single conjunct.
  EXPECT_EQ(SplitConjuncts(Expr::Or(a, b)).size(), 1u);
}

TEST(AnalysisTest, TransformBottomUpRewritesLeaves) {
  ExprPtr e = Expr::And(Expr::Var("p"), Expr::Var("p"));
  ExprPtr out = TransformBottomUp(e, [](const ExprPtr& n) -> ExprPtr {
    if (n->kind() == ExprKind::kVar && n->name() == "p") {
      return Expr::True();
    }
    return nullptr;
  });
  EXPECT_EQ(AlgebraStr(out), "true ∧ true");
}

TEST(AnalysisTest, EqualsIsStructural) {
  ExprPtr a = Expr::Select("x", Expr::True(), Expr::Table("T"));
  ExprPtr b = Expr::Select("x", Expr::True(), Expr::Table("T"));
  ExprPtr c = Expr::Select("y", Expr::True(), Expr::Table("T"));
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
}

TEST(AnalysisTest, TreeSizeCountsNodes) {
  ExprPtr e = Expr::And(Expr::Var("a"), Expr::Var("b"));
  EXPECT_EQ(e->TreeSize(), 3u);
}

}  // namespace
}  // namespace n2j
