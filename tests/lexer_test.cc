#include "oosql/lexer.h"

#include <gtest/gtest.h>

namespace n2j {
namespace {

std::vector<Token> Lex(const std::string& text) {
  Lexer lexer(text);
  Result<std::vector<Token>> r = lexer.Tokenize();
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : std::vector<Token>{};
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  std::vector<Token> ts = Lex("SELECT from WhErE");
  ASSERT_EQ(ts.size(), 4u);  // + eof
  EXPECT_EQ(ts[0].kind, TokenKind::kSelect);
  EXPECT_EQ(ts[1].kind, TokenKind::kFrom);
  EXPECT_EQ(ts[2].kind, TokenKind::kWhere);
}

TEST(LexerTest, IdentifiersKeepCase) {
  std::vector<Token> ts = Lex("SUPPLIER sname s1");
  EXPECT_EQ(ts[0].kind, TokenKind::kIdent);
  EXPECT_EQ(ts[0].text, "SUPPLIER");
  EXPECT_EQ(ts[2].text, "s1");
}

TEST(LexerTest, NumbersAndStrings) {
  std::vector<Token> ts = Lex("940101 3.25 \"red\"");
  EXPECT_EQ(ts[0].kind, TokenKind::kInt);
  EXPECT_EQ(ts[0].int_value, 940101);
  EXPECT_EQ(ts[1].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ(ts[1].double_value, 3.25);
  EXPECT_EQ(ts[2].kind, TokenKind::kString);
  EXPECT_EQ(ts[2].text, "red");
}

TEST(LexerTest, StringEscapes) {
  std::vector<Token> ts = Lex(R"("a\"b\n")");
  EXPECT_EQ(ts[0].text, "a\"b\n");
}

TEST(LexerTest, OperatorsAndPunctuation) {
  std::vector<Token> ts = Lex("( ) { } [ ] , . : ; = <> < <= > >= + - * / %");
  std::vector<TokenKind> expect = {
      TokenKind::kLParen, TokenKind::kRParen, TokenKind::kLBrace,
      TokenKind::kRBrace, TokenKind::kLBracket, TokenKind::kRBracket,
      TokenKind::kComma,  TokenKind::kDot,     TokenKind::kColon,
      TokenKind::kSemicolon, TokenKind::kEq,   TokenKind::kNe,
      TokenKind::kLt,     TokenKind::kLe,      TokenKind::kGt,
      TokenKind::kGe,     TokenKind::kPlus,    TokenKind::kDash,
      TokenKind::kStar,   TokenKind::kSlash,   TokenKind::kPercent,
      TokenKind::kEof};
  ASSERT_EQ(ts.size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(ts[i].kind, expect[i]) << i;
  }
}

TEST(LexerTest, CommentsAreSkipped) {
  std::vector<Token> ts = Lex("select -- comment to end of line\n 1");
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts[1].kind, TokenKind::kInt);
}

TEST(LexerTest, LineAndColumnTracking) {
  std::vector<Token> ts = Lex("select\n  x");
  EXPECT_EQ(ts[0].line, 1);
  EXPECT_EQ(ts[1].line, 2);
  EXPECT_EQ(ts[1].column, 3);
}

TEST(LexerTest, Errors) {
  Lexer bad("select @");
  EXPECT_FALSE(bad.Tokenize().ok());
  Lexer unterminated("\"abc");
  EXPECT_FALSE(unterminated.Tokenize().ok());
}

TEST(LexerTest, SetComparisonKeywords) {
  std::vector<Token> ts =
      Lex("in contains subset subseteq supset supseteq union intersect minus");
  EXPECT_EQ(ts[0].kind, TokenKind::kIn);
  EXPECT_EQ(ts[1].kind, TokenKind::kContains);
  EXPECT_EQ(ts[2].kind, TokenKind::kSubset);
  EXPECT_EQ(ts[3].kind, TokenKind::kSubsetEq);
  EXPECT_EQ(ts[4].kind, TokenKind::kSupset);
  EXPECT_EQ(ts[5].kind, TokenKind::kSupsetEq);
  EXPECT_EQ(ts[6].kind, TokenKind::kUnion);
  EXPECT_EQ(ts[7].kind, TokenKind::kIntersect);
  EXPECT_EQ(ts[8].kind, TokenKind::kMinus);
}

}  // namespace
}  // namespace n2j
