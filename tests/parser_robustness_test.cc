// Robustness: the front end must fail with a ParseError/TypeError Status
// — never crash, hang or abort — on malformed and adversarial input.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "oosql/lexer.h"
#include "oosql/parser.h"
#include "oosql/translate.h"
#include "tests/test_util.h"

namespace n2j {
namespace {

TEST(ParserRobustnessTest, MalformedQueriesFailCleanly) {
  const char* kBad[] = {
      "",
      ";",
      "select",
      "select from",
      "select x from",
      "select x from x",
      "select x from x in",
      "select x from x in X where",
      "select x from x in X where x.",
      "select x from x in X where x.a =",
      "select x from x in X where (x.a = 1",
      "select x from x in X where x.a = 1)",
      "select x from x in X with",
      "select x from x in X with Y",
      "select x from x in X with Y =",
      "select (a = from x in X",
      "select {1, from x in X",
      "select x[ from x in X",
      "select x from x in X where exists",
      "select x from x in X where exists y",
      "select x from x in X where exists y in",
      "select x from x in X where count(",
      "select x from x in X where x.a in {1, }",
      "not not not",
      "x.a = 1",  // no select — a bare expression is fine to parse...
  };
  for (const char* text : kBad) {
    Result<QExprPtr> r = Parser::ParseQueryString(text);
    // The last entry actually parses (queries are arbitrary expressions);
    // everything else must fail with a ParseError.
    if (std::string(text) == "x.a = 1") {
      EXPECT_TRUE(r.ok()) << text;
    } else {
      ASSERT_FALSE(r.ok()) << "unexpectedly parsed: " << text;
      EXPECT_EQ(r.status().code(), StatusCode::kParseError) << text;
    }
  }
}

TEST(ParserRobustnessTest, RandomTokenSoupNeverCrashes) {
  // Strings assembled from valid tokens in random order: the parser must
  // terminate with OK or ParseError on every one of them.
  const char* kTokens[] = {
      "select", "from",  "where", "in",     "and",   "or",    "not",
      "exists", "forall", "count", "(",     ")",     "{",     "}",
      "[",      "]",      ",",     ".",     ":",     "=",     "<>",
      "<",      ">",      "x",     "y",     "X",     "Y",     "1",
      "2",      "\"s\"", "subseteq", "union", "with", "true", "isempty",
  };
  Rng rng(2024);
  int parsed_ok = 0;
  for (int round = 0; round < 500; ++round) {
    std::string text;
    int len = static_cast<int>(rng.Uniform(1, 14));
    for (int i = 0; i < len; ++i) {
      text += kTokens[rng.Uniform(0, std::size(kTokens) - 1)];
      text += " ";
    }
    Result<QExprPtr> r = Parser::ParseQueryString(text);
    if (r.ok()) ++parsed_ok;
    // No crash = pass; also check errors carry positions.
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kParseError) << text;
      EXPECT_FALSE(r.status().message().empty());
    }
  }
  // A few random soups are valid expressions — sanity that the generator
  // is not trivially rejecting everything.
  EXPECT_GT(parsed_ok, 0);
}

TEST(ParserRobustnessTest, DeeplyNestedInputTerminates) {
  // 200 levels of parentheses and of nested selects.
  std::string parens(200, '(');
  parens += "1";
  parens += std::string(200, ')');
  EXPECT_TRUE(Parser::ParseQueryString(parens).ok());

  std::string nested = "1";
  for (int i = 0; i < 60; ++i) {
    nested = "select " + nested + " from v" + std::to_string(i) + " in X";
  }
  Result<QExprPtr> r = Parser::ParseQueryString(nested);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST(ParserRobustnessTest, TranslatorRejectsParsedNonsense) {
  // Things that parse but cannot type-check must fail as TypeError.
  auto db = std::make_unique<Database>();
  ASSERT_TRUE(AddRandomXY(db.get(), XYConfig()).ok());
  Translator tr(db->schema(), db.get());
  const char* kIllTyped[] = {
      "select x from x in X where x.c + 1 = 2",
      "select x from x in X where x.a and true",
      "select x from x in X where exists y in x.a : true",
      "select x.a.b from x in X",
      "select x from x in 1 + 2",
      "select sum(x.c) from x in X",
  };
  for (const char* text : kIllTyped) {
    Result<TypedExpr> r = tr.TranslateString(text);
    ASSERT_FALSE(r.ok()) << text;
    EXPECT_EQ(r.status().code(), StatusCode::kTypeError) << text;
  }
}

TEST(ParserRobustnessTest, LexerHandlesEdgeCases) {
  // Long identifiers, adjacent operators, CRLF, tabs.
  std::string long_ident(5000, 'a');
  Lexer l1("select " + long_ident + " from x in X");
  EXPECT_TRUE(l1.Tokenize().ok());
  Lexer l2("a<=>=<>b");
  Result<std::vector<Token>> t2 = l2.Tokenize();
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ((*t2)[1].kind, TokenKind::kLe);
  EXPECT_EQ((*t2)[2].kind, TokenKind::kGe);
  EXPECT_EQ((*t2)[3].kind, TokenKind::kNe);
  Lexer l3("select\r\n\tx from x in X");
  EXPECT_TRUE(l3.Tokenize().ok());
}

}  // namespace
}  // namespace n2j
