// Golden-plan regression tests: the exact plans the optimizer emits for
// the paper's signature queries. These plans ARE the paper's results —
// compare with the expressions printed in Sections 4–6:
//
//   Query 4:  π_eid(µ_parts(SUPPLIER) ▷ PART)
//   Query 5:  SUPPLIER ⋉_{s,p : p[pid]∈s.parts ∧ p.color="red"} PART
//   Query 6:  π(SUPPLIER ⊣_{s,p : p[pid]∈s.parts ; parts_suppl} PART)
//
// If a rewrite change alters one of these shapes, this test makes the
// drift visible (update the golden string only if the new plan is
// provably at least as good).

#include <gtest/gtest.h>

#include "adl/printer.h"
#include "core/engine.h"
#include "tests/test_util.h"

namespace n2j {
namespace {

class GoldenPlansTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SupplierPartConfig config;
    config.seed = 21;
    config.num_parts = 50;
    config.num_suppliers = 20;
    config.parts_per_supplier = 6;
    config.red_fraction = 0.25;
    config.match_fraction = 0.85;
    config.num_deliveries = 30;
    db_ = MakeSupplierPartDatabase(config);
    ASSERT_TRUE(AddRandomXY(db_.get(), XYConfig()).ok());
    engine_ = std::make_unique<QueryEngine>(db_.get());
  }

  std::string PlanFor(const std::string& query) {
    Result<QueryReport> r = engine_->Run(query);
    EXPECT_TRUE(r.ok()) << query << "\n" << r.status().ToString();
    if (!r.ok()) return "<error>";
    return AlgebraStr(r->optimized);
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(GoldenPlansTest, Query1SelectClauseNesting) {
  EXPECT_EQ(
      PlanFor("select (sname = s.sname, pnames = select p.pname "
              "from p in PART where p[pid] in s.parts and "
              "p.color = \"red\") from s in SUPPLIER"),
      // The red-part filter pushes below the nestjoin — the paper's own
      // "SUPPLIER ⊣ σ[color=red](PART)" shape.
      "α[z : (sname = z.sname, pnames = z.ys)]"
      "(SUPPLIER ⊣_{s,p : p[pid] ∈ s.parts ; p.pname ; ys} "
      "σ[p1 : p1.color = \"red\"](PART))");
}

TEST_F(GoldenPlansTest, Query2FromClauseNesting) {
  EXPECT_EQ(
      PlanFor("select d from d in (select e from e in DELIVERY "
              "where e.supplier.sname = \"s1\") where d.date > 940600"),
      "σ[e : deref<Supplier>(e.supplier).sname = \"s1\" ∧ "
      "e.date > 940600](DELIVERY)");
}

TEST_F(GoldenPlansTest, Query4ReferentialIntegrity) {
  // The paper's plan verbatim: π_eid(µ_parts(SUPPLIER) ▷ PART).
  EXPECT_EQ(
      PlanFor("select s.eid from s in SUPPLIER where "
              "exists z in s.parts : not exists p in PART : "
              "z.pid = p.pid"),
      "α[s : s.eid](μ_parts(SUPPLIER) "
      "▷_{s1,p : s1[pid].pid = p.pid} PART)");
}

TEST_F(GoldenPlansTest, Query5SemijoinViaExchange) {
  // The paper's plan verbatim:
  //   SUPPLIER ⋉_{s,p : p[pid]∈s.parts} σ[p : p.color = "red"](PART)
  // (exchange moved PART's quantifier out; conjunct extraction and
  // pushdown moved the color filter below the semijoin).
  EXPECT_EQ(
      PlanFor("select s.sname from s in SUPPLIER where "
              "exists x in s.parts : exists p in PART : "
              "x.pid = p.pid and p.color = \"red\""),
      "α[s : s.sname](SUPPLIER "
      "⋉_{s,p : ∃x ∈ s.parts · x.pid = p.pid} "
      "σ[p1 : p1.color = \"red\"](PART))");
}

TEST_F(GoldenPlansTest, SemijoinWithPushedSelection) {
  EXPECT_EQ(PlanFor("select x from x in X where x.a > 1 and "
                    "(exists y in Y : y.a = x.a)"),
            "σ[x1 : x1.a > 1](X) ⋉_{x,y : y.a = x.a} Y");
}

TEST_F(GoldenPlansTest, SubsetGroupingUsesNestJoin) {
  EXPECT_EQ(
      PlanFor("select x from x in X where x.c subseteq "
              "(select (d = y.e) from y in Y where y.a = x.a)"),
      "π_{a, c}(σ[z : z.c ⊆ z.ys](X ⊣_{x,y : y.a = x.a ; (d = y.e) ; ys} "
      "Y))");
}

TEST_F(GoldenPlansTest, PlansAreDeterministicAcrossRuns) {
  const char* q =
      "select s.eid from s in SUPPLIER where "
      "exists z in s.parts : not exists p in PART : z.pid = p.pid";
  EXPECT_EQ(PlanFor(q), PlanFor(q));
}

}  // namespace
}  // namespace n2j
