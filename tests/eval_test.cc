#include "exec/eval.h"

#include <gtest/gtest.h>

#include "storage/datagen.h"
#include "tests/test_util.h"

namespace n2j {
namespace {

using testutil::EvalExpr;

class EvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeFigure2Database();      // X(a, c:{(d)}), Y(a, e)
    fig3_ = MakeFigure3Database();    // X(a, b), Y(c, d) — disjoint SCH
  }
  std::unique_ptr<Database> db_;
  std::unique_ptr<Database> fig3_;
};

TEST_F(EvalTest, ConstAndArithmetic) {
  EXPECT_EQ(EvalExpr(*db_, Expr::Bin(BinOp::kAdd, Expr::Const(Value::Int(2)),
                                     Expr::Const(Value::Int(3)))),
            Value::Int(5));
  EXPECT_EQ(EvalExpr(*db_, Expr::Bin(BinOp::kMul, Expr::Const(Value::Int(4)),
                                     Expr::Const(Value::Double(0.5)))),
            Value::Double(2.0));
  Evaluator ev(*db_);
  Result<Value> div0 = ev.Eval(Expr::Bin(
      BinOp::kDiv, Expr::Const(Value::Int(1)), Expr::Const(Value::Int(0))));
  EXPECT_FALSE(div0.ok());
  EXPECT_EQ(div0.status().code(), StatusCode::kRuntimeError);
}

TEST_F(EvalTest, GetTableReturnsRows) {
  Value x = EvalExpr(*db_, Expr::Table("X"));
  EXPECT_EQ(x.set_size(), 3u);
  Value y = EvalExpr(*db_, Expr::Table("Y"));
  EXPECT_EQ(y.set_size(), 4u);
  Evaluator ev(*db_);
  EXPECT_FALSE(ev.Eval(Expr::Table("NOPE")).ok());
}

TEST_F(EvalTest, SelectFiltersRows) {
  // σ[x : x.a = 1](X)
  ExprPtr e = Expr::Select(
      "x", Expr::Eq(Expr::Access(Expr::Var("x"), "a"),
                    Expr::Const(Value::Int(1))),
      Expr::Table("X"));
  Value v = EvalExpr(*db_, e);
  ASSERT_EQ(v.set_size(), 1u);
  EXPECT_EQ(v.elements()[0].FindField("a")->int_value(), 1);
}

TEST_F(EvalTest, MapProjectsAndDeduplicates) {
  // α[y : y.a](Y) over Y with a-values {1,1,1,3}.
  ExprPtr e = Expr::Map("y", Expr::Access(Expr::Var("y"), "a"),
                        Expr::Table("Y"));
  Value v = EvalExpr(*db_, e);
  EXPECT_EQ(v, Value::Set({Value::Int(1), Value::Int(3)}));
}

TEST_F(EvalTest, QuantifierSemantics) {
  // ∃y ∈ Y · y.e = 3 → true ; ∀y ∈ Y · y.e < 3 → false
  ExprPtr ex = Expr::Quant(QuantKind::kExists, "y", Expr::Table("Y"),
                           Expr::Eq(Expr::Access(Expr::Var("y"), "e"),
                                    Expr::Const(Value::Int(3))));
  EXPECT_EQ(EvalExpr(*db_, ex), Value::Bool(true));
  ExprPtr fa = Expr::Quant(QuantKind::kForall, "y", Expr::Table("Y"),
                           Expr::Bin(BinOp::kLt,
                                     Expr::Access(Expr::Var("y"), "e"),
                                     Expr::Const(Value::Int(3))));
  EXPECT_EQ(EvalExpr(*db_, fa), Value::Bool(false));
}

TEST_F(EvalTest, QuantifierOverEmptySet) {
  ExprPtr empty = Expr::Const(Value::EmptySet());
  EXPECT_EQ(EvalExpr(*db_, Expr::Quant(QuantKind::kExists, "v", empty,
                                       Expr::True())),
            Value::Bool(false));
  EXPECT_EQ(EvalExpr(*db_, Expr::Quant(QuantKind::kForall, "v", empty,
                                       Expr::False())),
            Value::Bool(true));
}

TEST_F(EvalTest, Aggregates) {
  ExprPtr ycol = Expr::Map("y", Expr::Access(Expr::Var("y"), "e"),
                           Expr::Table("Y"));  // {1,2,3} deduped
  EXPECT_EQ(EvalExpr(*db_, Expr::Agg(AggKind::kCount, ycol)), Value::Int(3));
  EXPECT_EQ(EvalExpr(*db_, Expr::Agg(AggKind::kSum, ycol)), Value::Int(6));
  EXPECT_EQ(EvalExpr(*db_, Expr::Agg(AggKind::kMin, ycol)), Value::Int(1));
  EXPECT_EQ(EvalExpr(*db_, Expr::Agg(AggKind::kMax, ycol)), Value::Int(3));
  EXPECT_EQ(EvalExpr(*db_, Expr::Agg(AggKind::kAvg, ycol)),
            Value::Double(2.0));
  // Aggregates over the empty set.
  ExprPtr empty = Expr::Const(Value::EmptySet());
  EXPECT_EQ(EvalExpr(*db_, Expr::Agg(AggKind::kCount, empty)), Value::Int(0));
  EXPECT_EQ(EvalExpr(*db_, Expr::Agg(AggKind::kSum, empty)), Value::Int(0));
  EXPECT_EQ(EvalExpr(*db_, Expr::Agg(AggKind::kMin, empty)), Value::Null());
}

TEST_F(EvalTest, ProjectAndFlatten) {
  ExprPtr proj = Expr::Project(Expr::Table("Y"), {"a"});
  EXPECT_EQ(EvalExpr(*db_, proj).set_size(), 2u);  // {(a=1),(a=3)}
  // Flatten over the c-attributes of X.
  ExprPtr sets = Expr::Map("x", Expr::Access(Expr::Var("x"), "c"),
                           Expr::Table("X"));
  Value flat = EvalExpr(*db_, Expr::Flatten(sets));
  EXPECT_EQ(flat.set_size(), 3u);  // {1,2,3} as (d=_) tuples
}

TEST_F(EvalTest, NestUnnestRoundTripOnPnfData) {
  // µ then ν on Y (grouping e by a).
  ExprPtr nested = Expr::Nest(Expr::Table("Y"), {"e"}, "es");
  Value v = EvalExpr(*db_, nested);
  ASSERT_EQ(v.set_size(), 2u);  // a=1 and a=3 groups
  for (const Value& t : v.elements()) {
    if (t.FindField("a")->int_value() == 1) {
      EXPECT_EQ(t.FindField("es")->set_size(), 3u);
    } else {
      EXPECT_EQ(t.FindField("es")->set_size(), 1u);
    }
  }
  // Unnesting again restores Y.
  Value back = EvalExpr(*db_, Expr::Unnest(nested, "es"));
  EXPECT_EQ(back, EvalExpr(*db_, Expr::Table("Y")));
}

TEST_F(EvalTest, UnnestDropsEmptySets) {
  // µ_c(X): the (a=2, c=∅) tuple disappears — the paper's reason to
  // restrict option 1 to existential contexts.
  Value v = EvalExpr(*db_, Expr::Unnest(Expr::Table("X"), "c"));
  EXPECT_EQ(v.set_size(), 4u);  // 2 + 0 + 2 elements
  for (const Value& t : v.elements()) {
    EXPECT_NE(t.FindField("a")->int_value(), 2);
  }
}

TEST_F(EvalTest, ProductConcatenatesTuples) {
  Value v = EvalExpr(*fig3_,
                     Expr::Product(Expr::Table("X"), Expr::Table("Y")));
  EXPECT_EQ(v.set_size(), 9u);
  EXPECT_NE(v.elements()[0].FindField("a"), nullptr);
  EXPECT_NE(v.elements()[0].FindField("d"), nullptr);
  // Colliding schemas are a runtime error (Figure 2's X and Y share a).
  Evaluator ev(*db_);
  EXPECT_FALSE(
      ev.Eval(Expr::Product(Expr::Table("X"), Expr::Table("Y"))).ok());
}

// Figure 3's equijoin "on the second attribute": x.b = y.d.
ExprPtr EqJoinPred() {
  return Expr::Eq(Expr::Access(Expr::Var("x"), "b"),
                  Expr::Access(Expr::Var("y"), "d"));
}

TEST_F(EvalTest, JoinSemiAntiAgreeBetweenHashAndNestedLoop) {
  for (bool hash : {false, true}) {
    EvalOptions opts;
    opts.use_hash_joins = hash;
    Value join = EvalExpr(
        *fig3_, Expr::Join(Expr::Table("X"), Expr::Table("Y"), "x", "y",
                           EqJoinPred()),
        opts);
    // b=1 matches d=1 twice (x=(1,1),(2,1) x y=(1,1),(2,1)); b=3: none.
    EXPECT_EQ(join.set_size(), 4u) << "hash=" << hash;
    Value semi = EvalExpr(
        *fig3_, Expr::SemiJoin(Expr::Table("X"), Expr::Table("Y"), "x", "y",
                               EqJoinPred()),
        opts);
    EXPECT_EQ(semi.set_size(), 2u) << "hash=" << hash;
    Value anti = EvalExpr(
        *fig3_, Expr::AntiJoin(Expr::Table("X"), Expr::Table("Y"), "x", "y",
                               EqJoinPred()),
        opts);
    ASSERT_EQ(anti.set_size(), 1u) << "hash=" << hash;
    EXPECT_EQ(anti.elements()[0].FindField("a")->int_value(), 3);
  }
}

TEST_F(EvalTest, NestJoinReproducesFigure3) {
  for (bool hash : {false, true}) {
    EvalOptions opts;
    opts.use_hash_joins = hash;
    Value v = EvalExpr(
        *fig3_, Expr::NestJoin(Expr::Table("X"), Expr::Table("Y"), "x", "y",
                               EqJoinPred(), "ys"),
        opts);
    ASSERT_EQ(v.set_size(), 3u) << "hash=" << hash;
    for (const Value& t : v.elements()) {
      int64_t a = t.FindField("a")->int_value();
      size_t group = t.FindField("ys")->set_size();
      // Figure 3: x=(1,1) and x=(2,1) each collect {(1,1),(2,1)};
      // x=(3,3) is dangling and keeps the empty set.
      if (a == 1 || a == 2) EXPECT_EQ(group, 2u);
      if (a == 3) EXPECT_EQ(group, 0u);
    }
  }
}

TEST_F(EvalTest, NestJoinWithInnerFunction) {
  // Collect just the c-values of matching Y tuples.
  ExprPtr inner = Expr::Access(Expr::Var("y"), "c");
  Value v = EvalExpr(
      *fig3_, Expr::NestJoin(Expr::Table("X"), Expr::Table("Y"), "x", "y",
                             EqJoinPred(), "cs", inner));
  for (const Value& t : v.elements()) {
    if (t.FindField("a")->int_value() == 1) {
      EXPECT_EQ(*t.FindField("cs"),
                Value::Set({Value::Int(1), Value::Int(2)}));
    }
  }
}

TEST_F(EvalTest, NonEquiJoinFallsBackToNestedLoop) {
  // x.b < y.c has no equi keys; hash path must defer to nested loop.
  ExprPtr pred = Expr::Bin(BinOp::kLt, Expr::Access(Expr::Var("x"), "b"),
                           Expr::Access(Expr::Var("y"), "c"));
  Value v = EvalExpr(*fig3_, Expr::Join(Expr::Table("X"), Expr::Table("Y"),
                                        "x", "y", pred));
  // b=1 < c in {2,3} for two x rows -> 4 pairs; b=3: none.
  EXPECT_EQ(v.set_size(), 4u);
}

TEST_F(EvalTest, ResidualPredicateAppliesAfterHashMatch) {
  // Equi key b=d plus residual c >= 2.
  ExprPtr pred = Expr::And(
      EqJoinPred(), Expr::Bin(BinOp::kGe, Expr::Access(Expr::Var("y"), "c"),
                              Expr::Const(Value::Int(2))));
  for (bool hash : {false, true}) {
    EvalOptions opts;
    opts.use_hash_joins = hash;
    Value v = EvalExpr(*fig3_, Expr::Join(Expr::Table("X"), Expr::Table("Y"),
                                          "x", "y", pred),
                       opts);
    EXPECT_EQ(v.set_size(), 2u) << "hash=" << hash;
  }
}

TEST_F(EvalTest, DivideImplementsRelationalDivision) {
  // Y(a,e) ÷ {(e=1),(e=2)} = a-values related to both 1 and 2 → {1}.
  ExprPtr divisor = Expr::Const(Value::Set(
      {Value::Tuple({Field("e", Value::Int(1))}),
       Value::Tuple({Field("e", Value::Int(2))})}));
  Value v = EvalExpr(*db_, Expr::Divide(Expr::Table("Y"), divisor));
  ASSERT_EQ(v.set_size(), 1u);
  EXPECT_EQ(v.elements()[0].FindField("a")->int_value(), 1);
}

TEST_F(EvalTest, SetOperators) {
  ExprPtr a = Expr::Const(Value::Set({Value::Int(1), Value::Int(2)}));
  ExprPtr b = Expr::Const(Value::Set({Value::Int(2), Value::Int(3)}));
  EXPECT_EQ(EvalExpr(*db_, Expr::Union(a, b)).set_size(), 3u);
  EXPECT_EQ(EvalExpr(*db_, Expr::Intersect(a, b)).set_size(), 1u);
  EXPECT_EQ(EvalExpr(*db_, Expr::Difference(a, b)).set_size(), 1u);
  EXPECT_EQ(EvalExpr(*db_, Expr::Bin(BinOp::kSubsetEq, a, a)),
            Value::Bool(true));
  EXPECT_EQ(EvalExpr(*db_, Expr::Bin(BinOp::kSubset, a, a)),
            Value::Bool(false));
}

TEST_F(EvalTest, LetBindsValueOnce) {
  ExprPtr e = Expr::Let(
      "v", Expr::Table("Y"),
      Expr::Agg(AggKind::kCount, Expr::Var("v")));
  EXPECT_EQ(EvalExpr(*db_, e), Value::Int(4));
}

TEST_F(EvalTest, TupleOpsInExpressions) {
  ExprPtr t = Expr::TupleConstruct(
      {"a", "b"}, {Expr::Const(Value::Int(1)), Expr::Const(Value::Int(2))});
  EXPECT_EQ(EvalExpr(*db_, Expr::Access(t, "b")), Value::Int(2));
  Value projected = EvalExpr(*db_, Expr::TupleProject(t, {"b"}));
  EXPECT_EQ(projected.FieldNames(), (std::vector<std::string>{"b"}));
  Value updated = EvalExpr(
      *db_, Expr::ExceptOp(t, {"a", "c"},
                           {Expr::Const(Value::Int(10)),
                            Expr::Const(Value::Int(3))}));
  EXPECT_EQ(updated.FindField("a")->int_value(), 10);
  EXPECT_EQ(updated.FindField("c")->int_value(), 3);
}

TEST_F(EvalTest, DerefResolvesOids) {
  auto sp = testutil::SmallSupplierDb();
  // deref of the first part oid yields the part object.
  const Table* parts = sp->FindTable("PART");
  ASSERT_NE(parts, nullptr);
  Oid first = parts->rows()[0].FindField("pid")->oid_value();
  Value obj = EvalExpr(
      *sp, Expr::Deref(Expr::Const(Value::MakeOidValue(first)), "Part"));
  EXPECT_NE(obj.FindField("pname"), nullptr);
  // Implicit deref through field access.
  Value name = EvalExpr(
      *sp, Expr::Access(Expr::Const(Value::MakeOidValue(first)), "pname"));
  EXPECT_TRUE(name.is_string());
}

TEST_F(EvalTest, StatsCountNestedLoopWork) {
  EvalOptions nl;
  nl.use_hash_joins = false;
  Evaluator ev(*fig3_, nl);
  ASSERT_TRUE(ev.Eval(Expr::Join(Expr::Table("X"), Expr::Table("Y"), "x",
                                 "y", EqJoinPred()))
                  .ok());
  EXPECT_EQ(ev.stats().predicate_evals, 9u);  // 3 x 3

  Evaluator ev2(*fig3_);
  ASSERT_TRUE(ev2.Eval(Expr::Join(Expr::Table("X"), Expr::Table("Y"), "x",
                                  "y", EqJoinPred()))
                  .ok());
  EXPECT_EQ(ev2.stats().hash_inserts, 3u);
  EXPECT_EQ(ev2.stats().hash_probes, 3u);
  EXPECT_EQ(ev2.stats().predicate_evals, 0u);  // no residual
}

TEST_F(EvalTest, ErrorsSurfaceAsStatuses) {
  Evaluator ev(*db_);
  EXPECT_FALSE(ev.Eval(Expr::Var("unbound")).ok());
  EXPECT_FALSE(ev.Eval(Expr::Access(Expr::Const(Value::Int(1)), "a")).ok());
  EXPECT_FALSE(
      ev.Eval(Expr::Un(UnOp::kNot, Expr::Const(Value::Int(1)))).ok());
  EXPECT_FALSE(ev.Eval(Expr::Flatten(Expr::Table("Y"))).ok());
}

}  // namespace
}  // namespace n2j
