#include <gtest/gtest.h>

#include "storage/datagen.h"
#include "storage/database.h"
#include "storage/object_store.h"

namespace n2j {
namespace {

TEST(ObjectStoreTest, PutGetRoundTrip) {
  ObjectStore store(4, 2);
  Oid a = MakeOid(1, 0);
  ASSERT_TRUE(store.Put(a, Value::Int(10)).ok());
  ASSERT_TRUE(store.Put(MakeOid(1, 1), Value::Int(11)).ok());
  Result<Value> v = store.Get(a);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::Int(10));
  EXPECT_TRUE(store.Contains(a));
  EXPECT_FALSE(store.Contains(MakeOid(1, 9)));
  EXPECT_FALSE(store.Get(MakeOid(2, 0)).ok());
}

TEST(ObjectStoreTest, DenseAllocationEnforced) {
  ObjectStore store;
  EXPECT_FALSE(store.Put(MakeOid(1, 5), Value::Int(1)).ok());
  EXPECT_TRUE(store.Put(MakeOid(1, 0), Value::Int(1)).ok());
  EXPECT_FALSE(store.Put(MakeOid(1, 0), Value::Int(1)).ok());
}

TEST(ObjectStoreTest, PageCacheCountsHitsAndMisses) {
  ObjectStore store(/*page_size=*/2, /*cache_pages=*/1);
  for (uint64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(store.Put(MakeOid(1, i), Value::Int(int64_t(i))).ok());
  }
  store.ResetStats();
  // Sequential scan: 6 derefs touch 3 pages; first touch of each page is
  // a miss, the second a hit.
  for (uint64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(store.Get(MakeOid(1, i)).ok());
  }
  EXPECT_EQ(store.stats().gets, 6u);
  EXPECT_EQ(store.stats().page_misses, 3u);
  EXPECT_EQ(store.stats().page_hits, 3u);

  store.ResetStats();
  // Ping-pong across pages with a single cache page: all misses.
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(store.Get(MakeOid(1, 0)).ok());
    ASSERT_TRUE(store.Get(MakeOid(1, 4)).ok());
  }
  EXPECT_EQ(store.stats().page_misses, 6u);
}

TEST(DatabaseTest, NewObjectAddsOidFieldAndExtentRow) {
  Database db(MakeSupplierPartSchema());
  Result<Oid> oid = db.NewObject(
      "Part", Value::Tuple({Field("pname", Value::String("bolt")),
                            Field("price", Value::Int(5)),
                            Field("color", Value::String("red"))}));
  ASSERT_TRUE(oid.ok());
  const Table* t = db.FindTable("PART");
  ASSERT_NE(t, nullptr);
  ASSERT_EQ(t->size(), 1u);
  EXPECT_EQ(t->rows()[0].FindField("pid")->oid_value(), *oid);
  Result<Value> obj = db.Deref(*oid);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj->FindField("pname")->string_value(), "bolt");
}

TEST(DatabaseTest, PlainTables) {
  Database db;
  ASSERT_TRUE(db.CreateTable("T", Type::Tuple({{"a", Type::Int()}})).ok());
  EXPECT_FALSE(db.CreateTable("T", Type::Tuple({{"a", Type::Int()}})).ok());
  EXPECT_TRUE(
      db.Insert("T", Value::Tuple({Field("a", Value::Int(1))})).ok());
  EXPECT_FALSE(db.Insert("NOPE", Value::Int(1)).ok());
  EXPECT_FALSE(db.Insert("T", Value::Int(1)).ok());
  EXPECT_EQ(db.FindTable("T")->size(), 1u);
}

TEST(DatagenTest, SupplierPartRespectsConfig) {
  SupplierPartConfig config;
  config.num_parts = 30;
  config.num_suppliers = 10;
  config.parts_per_supplier = 4;
  config.num_deliveries = 5;
  auto db = MakeSupplierPartDatabase(config);
  EXPECT_EQ(db->FindTable("PART")->size(), 30u);
  EXPECT_EQ(db->FindTable("SUPPLIER")->size(), 10u);
  EXPECT_EQ(db->FindTable("DELIVERY")->size(), 5u);
  for (const Value& s : db->FindTable("SUPPLIER")->rows()) {
    EXPECT_LE(s.FindField("parts")->set_size(), 4u);
  }
}

TEST(DatagenTest, MatchFractionControlsDanglingRefs) {
  SupplierPartConfig config;
  config.num_parts = 50;
  config.num_suppliers = 40;
  config.parts_per_supplier = 10;
  config.match_fraction = 1.0;
  auto db = MakeSupplierPartDatabase(config);
  for (const Value& s : db->FindTable("SUPPLIER")->rows()) {
    for (const Value& ref : s.FindField("parts")->elements()) {
      EXPECT_TRUE(db->store().Contains(ref.FindField("pid")->oid_value()));
    }
  }
  config.match_fraction = 0.0;
  auto db2 = MakeSupplierPartDatabase(config);
  size_t dangling = 0;
  for (const Value& s : db2->FindTable("SUPPLIER")->rows()) {
    for (const Value& ref : s.FindField("parts")->elements()) {
      if (!db2->store().Contains(ref.FindField("pid")->oid_value())) {
        ++dangling;
      }
    }
  }
  EXPECT_GT(dangling, 0u);
}

TEST(DatagenTest, DeterministicUnderSeed) {
  SupplierPartConfig config;
  config.seed = 123;
  auto a = MakeSupplierPartDatabase(config);
  auto b = MakeSupplierPartDatabase(config);
  EXPECT_EQ(a->FindTable("SUPPLIER")->AsSetValue(),
            b->FindTable("SUPPLIER")->AsSetValue());
}

TEST(DatagenTest, Figure2DataMatchesPaper) {
  auto db = MakeFigure2Database();
  const Table* x = db->FindTable("X");
  ASSERT_EQ(x->size(), 3u);
  // The dangling tuple (a=2, c=∅).
  bool found_empty = false;
  for (const Value& row : x->rows()) {
    if (row.FindField("a")->int_value() == 2) {
      EXPECT_EQ(row.FindField("c")->set_size(), 0u);
      found_empty = true;
    }
  }
  EXPECT_TRUE(found_empty);
  EXPECT_EQ(db->FindTable("Y")->size(), 4u);
}

TEST(RngTest, DeterministicAndBounded) {
  Rng a(9), b(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.Uniform(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    int64_t z = r.Zipf(100, 0.9);
    EXPECT_GE(z, 0);
    EXPECT_LT(z, 100);
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace n2j
