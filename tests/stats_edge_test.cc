// Edge-case regressions for the selectivity estimators (ISSUE 7
// satellite): EstimateMatchRate / RangeOverlapFraction must stay
// well-defined — finite and inside [0, 1] — on the degenerate inputs
// real catalogs produce: empty extents (distinct = 0), single-point
// discrete domains (max == min), mixed-kind attribute columns whose
// min/max straddle value kinds, and non-finite doubles.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "adl/value.h"
#include "stats/stats.h"
#include "storage/database.h"

namespace n2j {
namespace {

AttrStats ScalarInt(uint64_t distinct, int64_t min, int64_t max) {
  AttrStats a;
  a.scalar = true;
  a.distinct = distinct;
  a.min = Value::Int(min);
  a.max = Value::Int(max);
  a.rows_seen = distinct;
  return a;
}

constexpr double kFallback = 0.25;

TEST(EstimateMatchRate, NullStatsFallBack) {
  AttrStats a = ScalarInt(10, 0, 9);
  EXPECT_DOUBLE_EQ(EstimateMatchRate(nullptr, nullptr, kFallback), kFallback);
  EXPECT_DOUBLE_EQ(EstimateMatchRate(&a, nullptr, kFallback), kFallback);
  EXPECT_DOUBLE_EQ(EstimateMatchRate(nullptr, &a, kFallback), kFallback);
}

TEST(EstimateMatchRate, EmptySideIsHardZeroNotFallback) {
  // A build side with zero observed values can never match a probe:
  // the estimate is 0, not the fallback guess.
  AttrStats probe = ScalarInt(10, 0, 9);
  AttrStats empty = ScalarInt(0, 0, 0);
  empty.rows_seen = 0;
  EXPECT_DOUBLE_EQ(EstimateMatchRate(&probe, &empty, kFallback), 0.0);
  EXPECT_DOUBLE_EQ(EstimateMatchRate(&empty, &probe, kFallback), 0.0);
  EXPECT_DOUBLE_EQ(EstimateMatchRate(&empty, &empty, kFallback), 0.0);
}

TEST(EstimateMatchRate, SinglePointDomains) {
  // Zero-width discrete domain (max == min): W = 1. Same point on both
  // sides → every probe matches; disjoint points → none do.
  AttrStats five = ScalarInt(1, 5, 5);
  AttrStats also_five = ScalarInt(1, 5, 5);
  AttrStats nine = ScalarInt(1, 9, 9);
  EXPECT_DOUBLE_EQ(EstimateMatchRate(&five, &also_five, kFallback), 1.0);
  EXPECT_DOUBLE_EQ(EstimateMatchRate(&five, &nine, kFallback), 0.0);
}

TEST(EstimateMatchRate, TornRangeStaysClamped) {
  // max < min can only come from a torn or corrupted entry; whatever
  // path handles it, the result must stay finite and inside [0, 1].
  AttrStats torn = ScalarInt(5, 100, 0);  // width would be -99
  AttrStats normal = ScalarInt(10, 0, 99);
  for (double r : {EstimateMatchRate(&torn, &normal, kFallback),
                   EstimateMatchRate(&normal, &torn, kFallback)}) {
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
}

TEST(EstimateMatchRate, MixedKindColumnBounds) {
  // A column holding both ints and oids (schema-less CSV imports do
  // this) records min/max of different kinds. The discrete-width model
  // is meaningless there; the estimate must not go negative or blow up.
  AttrStats mixed;
  mixed.scalar = true;
  mixed.distinct = 8;
  mixed.min = Value::Int(3);
  mixed.max = Value::MakeOidValue(7);
  mixed.rows_seen = 8;
  AttrStats ints = ScalarInt(50, 0, 49);
  for (double r : {EstimateMatchRate(&mixed, &ints, kFallback),
                   EstimateMatchRate(&ints, &mixed, kFallback),
                   EstimateMatchRate(&mixed, &mixed, kFallback)}) {
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
}

TEST(EstimateMatchRate, NonFiniteDoubleBounds) {
  AttrStats nan_range;
  nan_range.scalar = true;
  nan_range.distinct = 4;
  nan_range.min = Value::Double(std::numeric_limits<double>::quiet_NaN());
  nan_range.max = Value::Double(std::numeric_limits<double>::infinity());
  nan_range.rows_seen = 4;
  AttrStats normal = ScalarInt(10, 0, 9);
  for (double r : {EstimateMatchRate(&nan_range, &normal, kFallback),
                   EstimateMatchRate(&normal, &nan_range, kFallback)}) {
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
}

TEST(RangeOverlapFraction, NonNumericIsNeutral) {
  AttrStats strings;
  strings.scalar = true;
  strings.distinct = 3;
  strings.min = Value::String("a");
  strings.max = Value::String("z");
  AttrStats ints = ScalarInt(10, 0, 9);
  EXPECT_DOUBLE_EQ(RangeOverlapFraction(strings, ints), 1.0);
  EXPECT_DOUBLE_EQ(RangeOverlapFraction(ints, strings), 1.0);
}

TEST(RangeOverlapFraction, OidVsNumberIsNeutral) {
  // Oids and numbers live on unrelated axes; comparing their images
  // would manufacture a bogus overlap (often 0), starving join orders.
  AttrStats oids;
  oids.scalar = true;
  oids.distinct = 5;
  oids.min = Value::MakeOidValue(1);
  oids.max = Value::MakeOidValue(5);
  AttrStats ints = ScalarInt(10, 1, 5);
  EXPECT_DOUBLE_EQ(RangeOverlapFraction(oids, ints), 1.0);
  EXPECT_DOUBLE_EQ(RangeOverlapFraction(ints, oids), 1.0);
}

TEST(RangeOverlapFraction, PointAndPartialOverlap) {
  AttrStats point = ScalarInt(1, 5, 5);
  AttrStats covering = ScalarInt(10, 0, 9);
  AttrStats outside = ScalarInt(3, 20, 29);
  EXPECT_DOUBLE_EQ(RangeOverlapFraction(point, covering), 1.0);
  EXPECT_DOUBLE_EQ(RangeOverlapFraction(point, outside), 0.0);
  // [0,9] vs [5,14]: overlap [5,9] = 4 out of span 9.
  AttrStats shifted = ScalarInt(10, 5, 14);
  EXPECT_NEAR(RangeOverlapFraction(covering, shifted), 4.0 / 9.0, 1e-9);
}

TEST(RangeOverlapFraction, NonFiniteBoundsAreNeutral) {
  AttrStats nan_range;
  nan_range.scalar = true;
  nan_range.distinct = 2;
  nan_range.min = Value::Double(std::numeric_limits<double>::quiet_NaN());
  nan_range.max = Value::Double(1.0);
  AttrStats ints = ScalarInt(10, 0, 9);
  EXPECT_DOUBLE_EQ(RangeOverlapFraction(nan_range, ints), 1.0);
  EXPECT_DOUBLE_EQ(RangeOverlapFraction(ints, nan_range), 1.0);
}

TEST(EstimateMatchRate, EmptyExtentEndToEnd) {
  // The d = 0 case as a catalog actually produces it: an extent with no
  // rows yields attribute stats with distinct = 0 (or no attrs at all),
  // and any join estimate against it must come out 0 — not fallback.
  Database db;
  ASSERT_TRUE(
      db.CreateTable("EMPTY", Type::Tuple({{"k", Type::Int()}})).ok());
  ASSERT_TRUE(db.CreateTable("FULL", Type::Tuple({{"k", Type::Int()}})).ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        db.Insert("FULL", Value::Tuple({Field("k", Value::Int(i))})).ok());
  }
  auto empty = db.stats().Get(db, "EMPTY");
  auto full = db.stats().Get(db, "FULL");
  ASSERT_NE(empty, nullptr);
  ASSERT_NE(full, nullptr);
  EXPECT_EQ(empty->row_count, 0u);
  const AttrStats* ek = empty->Find("k");
  const AttrStats* fk = full->Find("k");
  ASSERT_NE(fk, nullptr);
  if (ek != nullptr) {
    EXPECT_DOUBLE_EQ(EstimateMatchRate(fk, ek, kFallback), 0.0);
    EXPECT_DOUBLE_EQ(EstimateMatchRate(ek, fk, kFallback), 0.0);
  }
}

}  // namespace
}  // namespace n2j
