// Property-based tests of the Value algebra: canonical-form invariants,
// set-algebra laws, ordering laws, and hash/equality consistency on
// randomly generated nested values. These are the invariants everything
// above (joins, nest/unnest, the rewriter's equivalence arguments)
// silently relies on.

#include <gtest/gtest.h>

#include "adl/value.h"
#include "common/rng.h"

namespace n2j {
namespace {

/// Random nested value: atoms, tuples, and sets up to `depth`.
Value RandomValue(Rng& rng, int depth) {
  int pick = static_cast<int>(rng.Uniform(0, depth > 0 ? 6 : 3));
  switch (pick) {
    case 0:
      return Value::Int(rng.Uniform(-5, 5));
    case 1:
      return Value::String(rng.NextString(2));
    case 2:
      return Value::Bool(rng.Bernoulli(0.5));
    case 3:
      return Value::Double(static_cast<double>(rng.Uniform(-4, 4)) / 2.0);
    case 4: {
      std::vector<Field> fields;
      int n = static_cast<int>(rng.Uniform(0, 3));
      for (int i = 0; i < n; ++i) {
        fields.emplace_back(std::string(1, static_cast<char>('a' + i)),
                            RandomValue(rng, depth - 1));
      }
      return Value::Tuple(std::move(fields));
    }
    default: {
      std::vector<Value> elems;
      int n = static_cast<int>(rng.Uniform(0, 4));
      for (int i = 0; i < n; ++i) {
        elems.push_back(RandomValue(rng, depth - 1));
      }
      return Value::Set(std::move(elems));
    }
  }
}

Value RandomSet(Rng& rng, int depth = 2) {
  std::vector<Value> elems;
  int n = static_cast<int>(rng.Uniform(0, 6));
  for (int i = 0; i < n; ++i) elems.push_back(RandomValue(rng, depth));
  return Value::Set(std::move(elems));
}

class ValuePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ValuePropertyTest, SetCanonicalFormIsSortedAndUnique) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int round = 0; round < 50; ++round) {
    Value s = RandomSet(rng);
    const std::vector<Value>& es = s.elements();
    for (size_t i = 1; i < es.size(); ++i) {
      EXPECT_LT(es[i - 1].Compare(es[i]), 0);
    }
  }
}

TEST_P(ValuePropertyTest, CompareIsATotalOrder) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  for (int round = 0; round < 40; ++round) {
    Value a = RandomValue(rng, 2);
    Value b = RandomValue(rng, 2);
    Value c = RandomValue(rng, 2);
    // Antisymmetry.
    EXPECT_EQ(a.Compare(b) == 0, b.Compare(a) == 0);
    if (a.Compare(b) < 0) {
      EXPECT_GT(b.Compare(a), 0);
    }
    // Transitivity (on the ≤ relation).
    if (a.Compare(b) <= 0 && b.Compare(c) <= 0) {
      EXPECT_LE(a.Compare(c), 0);
    }
    // Reflexivity.
    EXPECT_EQ(a.Compare(a), 0);
  }
}

TEST_P(ValuePropertyTest, HashAgreesWithEquality) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 200);
  for (int round = 0; round < 60; ++round) {
    Value a = RandomValue(rng, 2);
    Value b = RandomValue(rng, 2);
    if (a == b) {
      EXPECT_EQ(a.Hash(), b.Hash()) << a.ToString();
    }
    EXPECT_EQ(a.Hash(), a.Hash());
  }
}

TEST_P(ValuePropertyTest, TupleEqualityIgnoresFieldOrder) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 300);
  for (int round = 0; round < 40; ++round) {
    Value v1 = RandomValue(rng, 1);
    Value v2 = RandomValue(rng, 1);
    Value ab = Value::Tuple({Field("a", v1), Field("b", v2)});
    Value ba = Value::Tuple({Field("b", v2), Field("a", v1)});
    EXPECT_EQ(ab, ba);
    EXPECT_EQ(ab.Hash(), ba.Hash());
  }
}

TEST_P(ValuePropertyTest, SetAlgebraLaws) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 400);
  for (int round = 0; round < 40; ++round) {
    Value a = RandomSet(rng);
    Value b = RandomSet(rng);
    Value c = RandomSet(rng);
    // Commutativity.
    EXPECT_EQ(a.SetUnion(b), b.SetUnion(a));
    EXPECT_EQ(a.SetIntersect(b), b.SetIntersect(a));
    // Associativity.
    EXPECT_EQ(a.SetUnion(b).SetUnion(c), a.SetUnion(b.SetUnion(c)));
    // Idempotence and identity.
    EXPECT_EQ(a.SetUnion(a), a);
    EXPECT_EQ(a.SetIntersect(a), a);
    EXPECT_EQ(a.SetUnion(Value::EmptySet()), a);
    EXPECT_EQ(a.SetIntersect(Value::EmptySet()), Value::EmptySet());
    // A − B ⊆ A; (A − B) ∩ B = ∅.
    EXPECT_TRUE(a.SetDifference(b).IsSubsetOf(a, false));
    EXPECT_EQ(a.SetDifference(b).SetIntersect(b), Value::EmptySet());
    // |A ∪ B| + |A ∩ B| = |A| + |B|.
    EXPECT_EQ(a.SetUnion(b).set_size() + a.SetIntersect(b).set_size(),
              a.set_size() + b.set_size());
    // De Morgan-ish: A − (B ∪ C) = (A − B) ∩ (A − C).
    EXPECT_EQ(a.SetDifference(b.SetUnion(c)),
              a.SetDifference(b).SetIntersect(a.SetDifference(c)));
  }
}

TEST_P(ValuePropertyTest, SubsetLaws) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 500);
  for (int round = 0; round < 40; ++round) {
    Value a = RandomSet(rng);
    Value b = RandomSet(rng);
    Value inter = a.SetIntersect(b);
    EXPECT_TRUE(inter.IsSubsetOf(a, false));
    EXPECT_TRUE(inter.IsSubsetOf(b, false));
    EXPECT_TRUE(a.IsSubsetOf(a.SetUnion(b), false));
    // Proper subset implies subset and inequality.
    if (a.IsSubsetOf(b, true)) {
      EXPECT_TRUE(a.IsSubsetOf(b, false));
      EXPECT_NE(a, b);
    }
    // Mutual inclusion implies equality.
    if (a.IsSubsetOf(b, false) && b.IsSubsetOf(a, false)) {
      EXPECT_EQ(a, b);
    }
    // Membership is consistent with inclusion of singletons.
    for (const Value& e : a.elements()) {
      EXPECT_TRUE(Value::Set({e}).IsSubsetOf(a, a.set_size() > 1));
      EXPECT_TRUE(a.SetContains(e));
    }
  }
}

TEST_P(ValuePropertyTest, ProjectConcatExceptRoundTrips) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 600);
  for (int round = 0; round < 40; ++round) {
    Value t = Value::Tuple({Field("a", RandomValue(rng, 1)),
                            Field("b", RandomValue(rng, 1)),
                            Field("c", RandomValue(rng, 1))});
    // Projection then concatenation restores the tuple (order-insensitive
    // equality).
    Value ab = t.ProjectTuple({"a", "b"});
    Value c = t.ProjectTuple({"c"});
    EXPECT_EQ(ab.ConcatTuple(c), t);
    // except with the original values is the identity.
    EXPECT_EQ(t.ExceptUpdate({Field("b", *t.FindField("b"))}), t);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValuePropertyTest, ::testing::Range(1, 6));

}  // namespace
}  // namespace n2j
