#include "adl/schema.h"

#include <gtest/gtest.h>

namespace n2j {
namespace {

TEST(SchemaTest, SupplierPartSchemaShape) {
  Schema s = MakeSupplierPartSchema();
  const ClassDef* part = s.FindClass("Part");
  ASSERT_NE(part, nullptr);
  EXPECT_EQ(part->extent, "PART");
  EXPECT_EQ(part->oid_field, "pid");
  // (pid : oid, pname : string, price : int, color : string)
  TypePtr obj = part->ObjectType();
  EXPECT_EQ(obj->fields().size(), 4u);
  EXPECT_TRUE(obj->FindField("pid")->is_oid());
  EXPECT_TRUE(obj->FindField("price")->is_int());

  const ClassDef* sup = s.FindClassByExtent("SUPPLIER");
  ASSERT_NE(sup, nullptr);
  EXPECT_EQ(sup->name, "Supplier");
  TypePtr parts = sup->ObjectType()->FindField("parts");
  ASSERT_NE(parts, nullptr);
  ASSERT_TRUE(parts->is_set());
  EXPECT_TRUE(parts->element()->FindField("pid")->is_ref());

  const ClassDef* del = s.FindClass("Delivery");
  ASSERT_NE(del, nullptr);
  EXPECT_TRUE(del->ObjectType()->FindField("supplier")->is_ref());
}

TEST(SchemaTest, ClassIdsAreSequential) {
  Schema s = MakeSupplierPartSchema();
  EXPECT_EQ(s.FindClass("Part")->class_id, 1);
  EXPECT_EQ(s.FindClass("Supplier")->class_id, 2);
  EXPECT_EQ(s.FindClass("Delivery")->class_id, 3);
  EXPECT_EQ(s.FindClassById(2), s.FindClass("Supplier"));
  EXPECT_EQ(s.FindClassById(0), nullptr);
  EXPECT_EQ(s.FindClassById(99), nullptr);
}

TEST(SchemaTest, DuplicateNamesRejected) {
  Schema s;
  ClassDef a;
  a.name = "A";
  a.extent = "AS";
  a.oid_field = "oid";
  ASSERT_TRUE(s.AddClass(a).ok());
  ClassDef dup_name;
  dup_name.name = "A";
  dup_name.extent = "OTHER";
  EXPECT_FALSE(s.AddClass(dup_name).ok());
  ClassDef dup_extent;
  dup_extent.name = "B";
  dup_extent.extent = "AS";
  EXPECT_FALSE(s.AddClass(dup_extent).ok());
}

TEST(SchemaTest, ToStringContainsDeclarations) {
  Schema s = MakeSupplierPartSchema();
  std::string text = s.ToString();
  EXPECT_NE(text.find("class Supplier with extension SUPPLIER oid eid"),
            std::string::npos);
  EXPECT_NE(text.find("price : int"), std::string::npos);
}

}  // namespace
}  // namespace n2j
