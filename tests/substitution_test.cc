// The capture-avoidance and scope-skipping machinery underneath every
// rewrite: Substitute's alpha-renaming, ReplaceSubexpr's binder checks,
// and OnlyFieldAccesses — the helpers whose subtle failure modes would
// silently corrupt plans.

#include <gtest/gtest.h>

#include "adl/analysis.h"
#include "adl/printer.h"
#include "rewrite/rules_internal.h"
#include "tests/test_util.h"

namespace n2j {
namespace {

using rewrite_internal::OnlyFieldAccesses;
using rewrite_internal::ReplaceSubexpr;

TEST(SubstitutionTest, RenamesSelectBinderOnCapture) {
  // [y := x.a] into σ[x : x.b = y](T): the bound x must be renamed so
  // the free x in the replacement stays free.
  ExprPtr e = Expr::Select(
      "x", Expr::Eq(Expr::Access(Expr::Var("x"), "b"), Expr::Var("y")),
      Expr::Table("T"));
  ExprPtr out = Substitute(e, "y", Expr::Access(Expr::Var("x"), "a"));
  EXPECT_NE(out->var(), "x");
  // The replacement's x is free in the result.
  EXPECT_TRUE(IsFreeIn("x", out)) << AlgebraStr(out);
  // The binder's occurrences were renamed consistently.
  EXPECT_TRUE(IsFreeIn(out->var(), out->child(1)) ||
              out->child(1)->TreeSize() > 0);
}

TEST(SubstitutionTest, RenamesJoinBindersOnCapture) {
  // Join binds two variables; capture through either must rename.
  ExprPtr join = Expr::SemiJoin(
      Expr::Table("A"), Expr::Table("B"), "x", "y",
      Expr::And(Expr::Eq(Expr::Var("x"), Expr::Var("y")),
                Expr::Eq(Expr::Var("z"), Expr::Var("z"))));
  ExprPtr out = Substitute(join, "z", Expr::Var("y"));
  // The y of the replacement must not be captured by the join's y.
  EXPECT_NE(out->var2(), "y");
  EXPECT_TRUE(IsFreeIn("y", out)) << AlgebraStr(out);
}

TEST(SubstitutionTest, QuantifierShadowingStopsSubstitution) {
  // [v := 1] into ∃v∈R·v = v: bound occurrences untouched.
  ExprPtr q = Expr::Quant(QuantKind::kExists, "v", Expr::Var("v"),
                          Expr::Eq(Expr::Var("v"), Expr::Var("v")));
  ExprPtr out = Substitute(q, "v", Expr::Const(Value::Int(1)));
  // The range (not bound) was substituted; the predicate was not.
  EXPECT_EQ(out->child(0)->kind(), ExprKind::kConst);
  EXPECT_EQ(out->child(1)->child(0)->kind(), ExprKind::kVar);
}

TEST(SubstitutionTest, NestJoinInnerFunctionIsBound) {
  // Both pred and inner are binding children of a nestjoin.
  ExprPtr nj = Expr::NestJoin(
      Expr::Table("A"), Expr::Table("B"), "x", "y",
      Expr::Eq(Expr::Var("x"), Expr::Var("y")), "g",
      Expr::Access(Expr::Var("y"), "f"));
  ExprPtr out = Substitute(nj, "y", Expr::Const(Value::Int(5)));
  // No occurrence was replaced: y is bound everywhere it appears.
  EXPECT_TRUE(out->Equals(*nj));
}

TEST(SubstitutionTest, SubstituteIntoOperandsStillWorks) {
  // The operand children of iterators are NOT bound; a free var there
  // must be substituted even when the binder shares its name.
  ExprPtr e = Expr::Select("v", Expr::True(), Expr::Var("v"));
  ExprPtr out = Substitute(e, "v", Expr::Table("T"));
  EXPECT_EQ(out->child(0)->kind(), ExprKind::kGetTable);
}

TEST(ReplaceSubexprTest, ReplacesAllEqualOccurrences) {
  ExprPtr target = Expr::Access(Expr::Var("x"), "a");
  ExprPtr e = Expr::And(Expr::Eq(target, Expr::Const(Value::Int(1))),
                        Expr::Eq(target, Expr::Const(Value::Int(2))));
  ExprPtr out = ReplaceSubexpr(e, target, Expr::Var("k"));
  EXPECT_EQ(AlgebraStr(out), "k = 1 ∧ k = 2");
}

TEST(ReplaceSubexprTest, SkipsScopesThatRebindFreeVars) {
  // target = x.a with free x; inside σ[x : …] the x is a different
  // binding, so no replacement may happen there.
  ExprPtr target = Expr::Access(Expr::Var("x"), "a");
  ExprPtr shadowed = Expr::Select(
      "x", Expr::Eq(target, Expr::Const(Value::Int(1))), Expr::Table("T"));
  ExprPtr e = Expr::And(
      Expr::Eq(target, Expr::Const(Value::Int(0))),
      Expr::Bin(BinOp::kIn, Expr::Const(Value::Int(9)),
                Expr::Map("m", Expr::Var("m"), shadowed)));
  ExprPtr out = ReplaceSubexpr(e, target, Expr::Var("k"));
  // Outer occurrence replaced…
  EXPECT_EQ(AlgebraStr(out->child(0)), "k = 0");
  // …inner (shadowed) untouched.
  bool inner_intact = false;
  VisitPreOrder(out, [&](const ExprPtr& n) {
    if (n->kind() == ExprKind::kSelect && n->var() == "x" &&
        n->child(1)->child(0)->Equals(*target)) {
      inner_intact = true;
    }
  });
  EXPECT_TRUE(inner_intact) << AlgebraStr(out);
}

TEST(OnlyFieldAccessesTest, DetectsWholesaleUses) {
  ExprPtr field_only = Expr::And(
      Expr::Eq(Expr::Access(Expr::Var("x"), "a"), Expr::Const(Value::Int(1))),
      Expr::Bin(BinOp::kGt, Expr::Access(Expr::Var("x"), "b"),
                Expr::Const(Value::Int(0))));
  EXPECT_TRUE(OnlyFieldAccesses(field_only, "x"));

  ExprPtr wholesale = Expr::Bin(BinOp::kIn, Expr::Var("x"),
                                Expr::Const(Value::EmptySet()));
  EXPECT_FALSE(OnlyFieldAccesses(wholesale, "x"));

  // A shadowed x below a binder does not count as a use.
  ExprPtr shadowed = Expr::Quant(
      QuantKind::kExists, "x", Expr::Const(Value::EmptySet()),
      Expr::Bin(BinOp::kIn, Expr::Var("x"), Expr::Const(Value::EmptySet())));
  EXPECT_TRUE(OnlyFieldAccesses(shadowed, "x")) << AlgebraStr(shadowed);

  // Tuple projection x[a] is a wholesale use (the projection needs the
  // tuple), so rebinding to a wider tuple is unsafe only via projection:
  ExprPtr proj = Expr::TupleProject(Expr::Var("x"), {"a"});
  EXPECT_FALSE(OnlyFieldAccesses(proj, "x"));
}

TEST(FreshVarTest, AvoidsEverythingInScope) {
  ExprPtr e = Expr::Select(
      "z", Expr::Eq(Expr::Var("z1"), Expr::Var("z2")), Expr::Table("T"));
  std::string fresh = FreshVar("z", e);
  EXPECT_NE(fresh, "z");
  EXPECT_NE(fresh, "z1");
  EXPECT_NE(fresh, "z2");
}

}  // namespace
}  // namespace n2j
