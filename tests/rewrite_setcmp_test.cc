// Tables 1 and 2: set comparison → quantifier expansions. Each row of
// Table 1 is checked for semantic equivalence on concrete data (via the
// full expansion helper), and the engine-level policy (expand only ∈/⊇)
// is checked through the driver.

#include <gtest/gtest.h>

#include "adl/analysis.h"
#include "rewrite/rules_internal.h"
#include "tests/test_util.h"

namespace n2j {
namespace {

using rewrite_internal::ExpandSetComparisonFull;
using testutil::CheckEquivalence;
using testutil::EvalExpr;
using testutil::HasNestedBaseTable;
using testutil::TranslateOrDie;

class SetCmpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    // S : {(k : int, c : {int-sets as unary tuples? no: plain ints})}
    // For Table 1 we need sets of *atomic* values; build a table whose
    // c-attribute is a set of ints and a table YV of ints (as unary
    // values is not a table, so use a table of (v : int) and compare
    // against its map).
    ASSERT_TRUE(
        db_->CreateTable(
               "S", Type::Tuple({{"k", Type::Int()},
                                 {"c", Type::Set(Type::Int())}}))
            .ok());
    auto s_row = [](int64_t k, std::vector<int64_t> cs) {
      std::vector<Value> c;
      for (int64_t v : cs) c.push_back(Value::Int(v));
      return Value::Tuple(
          {Field("k", Value::Int(k)), Field("c", Value::Set(std::move(c)))});
    };
    ASSERT_TRUE(db_->Insert("S", s_row(0, {})).ok());
    ASSERT_TRUE(db_->Insert("S", s_row(1, {1})).ok());
    ASSERT_TRUE(db_->Insert("S", s_row(2, {1, 2})).ok());
    ASSERT_TRUE(db_->Insert("S", s_row(3, {1, 2, 3})).ok());
    ASSERT_TRUE(db_->Insert("S", s_row(4, {2, 4})).ok());

    ASSERT_TRUE(
        db_->CreateTable("V", Type::Tuple({{"v", Type::Int()}})).ok());
    for (int64_t v : {1, 2}) {
      ASSERT_TRUE(
          db_->Insert("V", Value::Tuple({Field("v", Value::Int(v))})).ok());
    }
  }

  /// Y' = α[y : y.v](V) — the subquery value is {1, 2}.
  ExprPtr Yprime() {
    return Expr::Map("y", Expr::Access(Expr::Var("y"), "v"),
                     Expr::Table("V"));
  }

  /// σ[x : x.c θ Y'](S) with the given operator.
  ExprPtr Query(BinOp op) {
    return Expr::Select(
        "x", Expr::Bin(op, Expr::Access(Expr::Var("x"), "c"), Yprime()),
        Expr::Table("S"));
  }

  std::unique_ptr<Database> db_;
};

// Parameterized over every set comparison operator of Table 1: the full
// quantifier expansion must be semantically equivalent to the operator.
class Table1Row : public SetCmpTest,
                  public ::testing::WithParamInterface<BinOp> {};

TEST_P(Table1Row, ExpansionIsEquivalent) {
  BinOp op = GetParam();
  ExprPtr original = Query(op);
  ExprPtr lhs = Expr::Access(Expr::Var("x"), "c");
  ExprPtr expanded_pred =
      ExpandSetComparisonFull(op, lhs, Yprime(), original);
  ASSERT_NE(expanded_pred, nullptr);
  ExprPtr expanded = Expr::Select("x", expanded_pred, Expr::Table("S"));
  EXPECT_EQ(EvalExpr(*db_, original), EvalExpr(*db_, expanded))
      << "op = " << BinOpName(op);
}

INSTANTIATE_TEST_SUITE_P(
    AllOperators, Table1Row,
    ::testing::Values(BinOp::kSubset, BinOp::kSubsetEq, BinOp::kEq,
                      BinOp::kSupset, BinOp::kSupsetEq),
    [](const ::testing::TestParamInfo<BinOp>& info) {
      switch (info.param) {
        case BinOp::kSubset: return "ProperSubset";
        case BinOp::kSubsetEq: return "SubsetEq";
        case BinOp::kEq: return "Equal";
        case BinOp::kSupset: return "ProperSupset";
        case BinOp::kSupsetEq: return "SupsetEq";
        default: return "Other";
      }
    });

TEST_F(SetCmpTest, MembershipExpansion) {
  // x.k ∈ Y' (atomic membership).
  ExprPtr original = Expr::Select(
      "x",
      Expr::Bin(BinOp::kIn, Expr::Access(Expr::Var("x"), "k"), Yprime()),
      Expr::Table("S"));
  ExprPtr pred = ExpandSetComparisonFull(
      BinOp::kIn, Expr::Access(Expr::Var("x"), "k"), Yprime(), original);
  ExprPtr expanded = Expr::Select("x", pred, Expr::Table("S"));
  EXPECT_EQ(EvalExpr(*db_, original), EvalExpr(*db_, expanded));
}

TEST_F(SetCmpTest, ContainsExpansionSetOfSets) {
  // {x.c} ∋ Y' — compare via ∃z ∈ lhs · z = Y'. Build lhs as a set
  // literal holding x.c.
  ExprPtr lhs = Expr::SetConstruct({Expr::Access(Expr::Var("x"), "c")});
  ExprPtr original = Expr::Select(
      "x", Expr::Bin(BinOp::kContains, lhs, Yprime()), Expr::Table("S"));
  ExprPtr pred = ExpandSetComparisonFull(BinOp::kContains, lhs, Yprime(),
                                         original);
  ExprPtr expanded = Expr::Select("x", pred, Expr::Table("S"));
  EXPECT_EQ(EvalExpr(*db_, original), EvalExpr(*db_, expanded));
}

/// Correlated Y'(x) = α[y : y.v](σ[y : y.v >= x.k − 2](V)).
ExprPtr CorrelatedYprime() {
  return Expr::Map(
      "y", Expr::Access(Expr::Var("y"), "v"),
      Expr::Select(
          "y",
          Expr::Bin(BinOp::kGe, Expr::Access(Expr::Var("y"), "v"),
                    Expr::Bin(BinOp::kSub, Expr::Access(Expr::Var("x"), "k"),
                              Expr::Const(Value::Int(2)))),
          Expr::Table("V")));
}

TEST_F(SetCmpTest, EngineExpandsSupsetEqToAntiJoin) {
  // x.c ⊇ Y'(x) is the unnestable direction: the driver must produce an
  // antijoin (∀y∈Y'·y∈x.c ⇒ ¬∃y∈Y·¬(y∈x.c)).
  ExprPtr e = Expr::Select(
      "x",
      Expr::Bin(BinOp::kSupsetEq, Expr::Access(Expr::Var("x"), "c"),
                CorrelatedYprime()),
      Expr::Table("S"));
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("Table1-SetCmpToQuantifier")) << r.TraceToString();
  EXPECT_TRUE(r.Fired("Rule1-AntiJoin")) << r.TraceToString();
  EXPECT_FALSE(HasNestedBaseTable(r.expr));
}

TEST_F(SetCmpTest, EngineLeavesSubsetEqForGrouping) {
  // x.c ⊆ Y'(x) is NOT quantifier-expanded (it would need two
  // quantifiers); the nestjoin path handles it instead.
  ExprPtr e = Expr::Select(
      "x",
      Expr::Bin(BinOp::kSubsetEq, Expr::Access(Expr::Var("x"), "c"),
                CorrelatedYprime()),
      Expr::Table("S"));
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_FALSE(r.Fired("Table1-SetCmpToQuantifier")) << r.TraceToString();
  EXPECT_TRUE(r.Fired("NestJoinRewrite")) << r.TraceToString();
  EXPECT_FALSE(HasNestedBaseTable(r.expr));
}

TEST_F(SetCmpTest, UncorrelatedSubqueryHoistsInsteadOfExpanding) {
  // With an uncorrelated Y', both directions become constants.
  RewriteResult r = CheckEquivalence(*db_, Query(BinOp::kSupsetEq));
  EXPECT_TRUE(r.Fired("HoistUncorrelated")) << r.TraceToString();
  RewriteResult r2 = CheckEquivalence(*db_, Query(BinOp::kSubsetEq));
  EXPECT_TRUE(r2.Fired("HoistUncorrelated")) << r2.TraceToString();
}

TEST_F(SetCmpTest, Table2EmptySetPredicate) {
  // σ[x : σ[y : y.v = x.k](V) = ∅](S)  ⇒  antijoin.
  ExprPtr subq = Expr::Select(
      "y", Expr::Eq(Expr::Access(Expr::Var("y"), "v"),
                    Expr::Access(Expr::Var("x"), "k")),
      Expr::Table("V"));
  ExprPtr e = Expr::Select(
      "x", Expr::Eq(subq, Expr::Const(Value::EmptySet())), Expr::Table("S"));
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("Table2-EmptySet")) << r.TraceToString();
  EXPECT_TRUE(r.Fired("Rule1-AntiJoin")) << r.TraceToString();
  EXPECT_FALSE(HasNestedBaseTable(r.expr));
}

TEST_F(SetCmpTest, Table2CountZero) {
  ExprPtr subq = Expr::Select(
      "y", Expr::Eq(Expr::Access(Expr::Var("y"), "v"),
                    Expr::Access(Expr::Var("x"), "k")),
      Expr::Table("V"));
  ExprPtr e = Expr::Select(
      "x",
      Expr::Eq(Expr::Agg(AggKind::kCount, subq), Expr::Const(Value::Int(0))),
      Expr::Table("S"));
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("Table2-CountZero")) << r.TraceToString();
  EXPECT_TRUE(r.Fired("Rule1-AntiJoin")) << r.TraceToString();
}

TEST_F(SetCmpTest, Table2IsEmpty) {
  ExprPtr subq = Expr::Select(
      "y", Expr::Eq(Expr::Access(Expr::Var("y"), "v"),
                    Expr::Access(Expr::Var("x"), "k")),
      Expr::Table("V"));
  ExprPtr e = Expr::Select("x", Expr::Un(UnOp::kIsEmpty, subq),
                           Expr::Table("S"));
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("Table2-IsEmpty")) << r.TraceToString();
  EXPECT_TRUE(r.Fired("Rule1-AntiJoin")) << r.TraceToString();
}

TEST_F(SetCmpTest, Table2DisjointIntersection) {
  // x.c ∩ Y'(x) = ∅ with a correlated subquery ⇒ antijoin.
  ExprPtr subq = Expr::Map(
      "y", Expr::Access(Expr::Var("y"), "v"),
      Expr::Select("y",
                   Expr::Bin(BinOp::kGe, Expr::Access(Expr::Var("y"), "v"),
                             Expr::Access(Expr::Var("x"), "k")),
                   Expr::Table("V")));
  ExprPtr e = Expr::Select(
      "x",
      Expr::Eq(Expr::Bin(BinOp::kIntersectOp,
                         Expr::Access(Expr::Var("x"), "c"), subq),
               Expr::Const(Value::EmptySet())),
      Expr::Table("S"));
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("Table2-DisjointIntersect")) << r.TraceToString();
  EXPECT_TRUE(r.Fired("Rule1-AntiJoin")) << r.TraceToString();
  EXPECT_FALSE(HasNestedBaseTable(r.expr));
}

TEST_F(SetCmpTest, NegationFlipsJoinKind) {
  // ¬(x.k ∈ Y'(x)) becomes an antijoin (negated operators swap
  // semijoin/antijoin, as the paper notes under Table 1).
  ExprPtr subq = Expr::Map(
      "y", Expr::Access(Expr::Var("y"), "v"),
      Expr::Select("y",
                   Expr::Bin(BinOp::kLe, Expr::Access(Expr::Var("y"), "v"),
                             Expr::Access(Expr::Var("x"), "k")),
                   Expr::Table("V")));
  ExprPtr e = Expr::Select(
      "x",
      Expr::Not(
          Expr::Bin(BinOp::kIn, Expr::Access(Expr::Var("x"), "k"), subq)),
      Expr::Table("S"));
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("Rule1-AntiJoin")) << r.TraceToString();
  EXPECT_FALSE(HasNestedBaseTable(r.expr));
}

TEST_F(SetCmpTest, SetAttributeComparisonsAreLeftAlone) {
  // Comparisons not involving base tables keep their direct form.
  ExprPtr e = Expr::Select(
      "x",
      Expr::Bin(BinOp::kSubsetEq, Expr::Access(Expr::Var("x"), "c"),
                Expr::Const(Value::Set({Value::Int(1), Value::Int(2)}))),
      Expr::Table("S"));
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_FALSE(r.Fired("Table1-SetCmpToQuantifier"));
  EXPECT_EQ(r.expr->child(1)->bin_op(), BinOp::kSubsetEq);
}

}  // namespace
}  // namespace n2j
