#include "oosql/parser.h"

#include <gtest/gtest.h>

namespace n2j {
namespace {

QExprPtr Parse(const std::string& text) {
  Result<QExprPtr> r = Parser::ParseQueryString(text);
  EXPECT_TRUE(r.ok()) << text << "\n" << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

TEST(ParserTest, SimpleSelect) {
  QExprPtr q = Parse("select s.sname from s in SUPPLIER");
  ASSERT_NE(q, nullptr);
  ASSERT_EQ(q->kind, QExpr::Kind::kSelect);
  EXPECT_EQ(q->NumRanges(), 1u);
  EXPECT_EQ(q->names[0], "s");
  EXPECT_FALSE(q->has_where);
  EXPECT_EQ(q->SelectBody()->kind, QExpr::Kind::kField);
}

TEST(ParserTest, WhereClause) {
  QExprPtr q = Parse(
      "select p from p in PART where p.color = \"red\" and p.price > 10");
  ASSERT_TRUE(q->has_where);
  EXPECT_EQ(q->Where()->kind, QExpr::Kind::kBinary);
  EXPECT_EQ(q->Where()->bop, BinOp::kAnd);
}

TEST(ParserTest, MultipleRangeVariables) {
  QExprPtr q = Parse(
      "select (a = x.a, b = y.b) from x in X, y in Y where x.a = y.a");
  EXPECT_EQ(q->NumRanges(), 2u);
  EXPECT_EQ(q->names[1], "y");
}

TEST(ParserTest, NestedSelectInWhere) {
  QExprPtr q = Parse(
      "select s.sname from s in SUPPLIER "
      "where s.parts supseteq (select t.parts from t in SUPPLIER "
      "where t.sname = \"s1\")");
  ASSERT_TRUE(q->has_where);
  EXPECT_EQ(q->Where()->bop, BinOp::kSupsetEq);
  EXPECT_EQ(q->Where()->kids[1]->kind, QExpr::Kind::kSelect);
}

TEST(ParserTest, NestedSelectInFrom) {
  QExprPtr q = Parse(
      "select d from d in (select e from e in DELIVERY "
      "where e.date = 940101) where d.date = 940101");
  EXPECT_EQ(q->Range(0)->kind, QExpr::Kind::kSelect);
}

TEST(ParserTest, QuantifierForms) {
  QExprPtr q = Parse(
      "select d from d in DELIVERY where exists x in d.supply");
  EXPECT_EQ(q->Where()->kind, QExpr::Kind::kQuant);
  EXPECT_EQ(q->Where()->kids.size(), 1u);  // bare: no predicate

  QExprPtr q2 = Parse(
      "select s from s in SUPPLIER where forall x in s.parts : "
      "exists p in PART : x.pid = p.pid");
  EXPECT_EQ(q2->Where()->quant, QuantKind::kForall);
  ASSERT_EQ(q2->Where()->kids.size(), 2u);
  EXPECT_EQ(q2->Where()->kids[1]->kind, QExpr::Kind::kQuant);
}

TEST(ParserTest, QuantifierRangeBindsTightly) {
  // The range is a path; the colon-predicate extends to the 'and'.
  QExprPtr q = Parse(
      "select s from s in SUPPLIER where (exists x in s.parts) "
      "and s.sname = \"s1\"");
  EXPECT_EQ(q->Where()->bop, BinOp::kAnd);
}

TEST(ParserTest, TupleConstructorVsGrouping) {
  QExprPtr tup = Parse("select (sname = s.sname, n = 1) from s in SUPPLIER");
  EXPECT_EQ(tup->SelectBody()->kind, QExpr::Kind::kTupleLit);
  EXPECT_EQ(tup->SelectBody()->names,
            (std::vector<std::string>{"sname", "n"}));
  QExprPtr grouped = Parse("select (1 + 2) * 3 from s in SUPPLIER");
  EXPECT_EQ(grouped->SelectBody()->kind, QExpr::Kind::kBinary);
}

TEST(ParserTest, SetLiteralsAndOperators) {
  QExprPtr q = Parse("select x from x in X where x.a in {1, 2, 3}");
  EXPECT_EQ(q->Where()->bop, BinOp::kIn);
  EXPECT_EQ(q->Where()->kids[1]->kind, QExpr::Kind::kSetLit);
  EXPECT_EQ(q->Where()->kids[1]->kids.size(), 3u);
  QExprPtr empty = Parse("select x from x in X where x.c = {}");
  EXPECT_EQ(empty->Where()->kids[1]->kids.size(), 0u);
}

TEST(ParserTest, TupleProjection) {
  QExprPtr q = Parse("select p[pid, pname] from p in PART");
  EXPECT_EQ(q->SelectBody()->kind, QExpr::Kind::kTupleProject);
  EXPECT_EQ(q->SelectBody()->names,
            (std::vector<std::string>{"pid", "pname"}));
}

TEST(ParserTest, AggregatesAndIsEmpty) {
  QExprPtr q = Parse("select s from s in SUPPLIER where count(s.parts) = 0");
  EXPECT_EQ(q->Where()->kids[0]->kind, QExpr::Kind::kAgg);
  EXPECT_EQ(q->Where()->kids[0]->agg, AggKind::kCount);
  QExprPtr q2 = Parse("select s from s in SUPPLIER where isempty(s.parts)");
  EXPECT_EQ(q2->Where()->kind, QExpr::Kind::kIsEmptyCall);
}

TEST(ParserTest, PrecedenceArithmeticVsComparison) {
  QExprPtr q = Parse("select x from x in X where x.a + 1 * 2 = 3");
  const QExprPtr& w = q->Where();
  EXPECT_EQ(w->bop, BinOp::kEq);
  EXPECT_EQ(w->kids[0]->bop, BinOp::kAdd);
  EXPECT_EQ(w->kids[0]->kids[1]->bop, BinOp::kMul);
}

TEST(ParserTest, DeepPathExpressions) {
  QExprPtr q = Parse(
      "select d from d in DELIVERY where d.supplier.sname = \"s1\"");
  const QExprPtr& lhs = q->Where()->kids[0];
  EXPECT_EQ(lhs->kind, QExpr::Kind::kField);
  EXPECT_EQ(lhs->str, "sname");
  EXPECT_EQ(lhs->kids[0]->str, "supplier");
}

TEST(ParserTest, ErrorsCarryPositions) {
  Result<QExprPtr> r = Parser::ParseQueryString("select from x in X");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("1:8"), std::string::npos)
      << r.status().ToString();
  EXPECT_FALSE(Parser::ParseQueryString("select x from x in X extra").ok());
  EXPECT_FALSE(Parser::ParseQueryString("select x from in X").ok());
}

TEST(ParserTest, SchemaDefinitions) {
  Result<Schema> s = Parser::ParseSchemaString(R"(
    class Part with extension PART oid pid
      attributes pname : string, price : int, color : string
    end Part
    class Supplier with extension SUPPLIER oid eid
      attributes sname : string,
                 parts : { (pid : Part) }
    end Supplier
  )");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  const ClassDef* part = s->FindClass("Part");
  ASSERT_NE(part, nullptr);
  EXPECT_EQ(part->oid_field, "pid");
  EXPECT_TRUE(part->attributes[1].type->is_int());
  const ClassDef* sup = s->FindClass("Supplier");
  ASSERT_NE(sup, nullptr);
  TypePtr parts = sup->ObjectType()->FindField("parts");
  ASSERT_TRUE(parts->is_set());
  EXPECT_TRUE(parts->element()->FindField("pid")->is_ref());
  EXPECT_EQ(parts->element()->FindField("pid")->class_name(), "Part");
}

TEST(ParserTest, SchemaErrors) {
  EXPECT_FALSE(Parser::ParseSchemaString("class").ok());
  EXPECT_FALSE(
      Parser::ParseSchemaString("class A attributes a : int end").ok());
}

TEST(ParserTest, RoundTripToString) {
  QExprPtr q = Parse(
      "select s.sname from s in SUPPLIER where s.sname = \"s1\"");
  std::string text = QExprToString(q);
  EXPECT_NE(text.find("select s.sname from s in SUPPLIER"),
            std::string::npos);
  // The printed form parses again.
  EXPECT_TRUE(Parser::ParseQueryString(text).ok());
}

}  // namespace
}  // namespace n2j
