// Concurrency regressions for ColumnarCatalog (ISSUE 9 satellite): the
// lazy projection rebuild must not hand readers an entry that a racing
// refresh then mutates or frees, and must never publish a projection
// whose recorded version is older than one already cached. Unlike
// StatsCatalog, the catalog builds projections OUTSIDE its mutex (a
// projection copies every row), so two racers may both build for the
// same version — the contract is snapshot immutability and version
// monotonicity, not single-compute. Run under TSan in CI.
//
// Structure mirrors stats_concurrency_test.cc: mutations are
// single-threaded *between* concurrent-read phases; within a phase,
// many threads race Get() on a stale entry while others keep reading
// snapshots captured before the mutation.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "adl/type.h"
#include "adl/value.h"
#include "storage/columnar.h"
#include "storage/database.h"

namespace n2j {
namespace {

void InsertRows(Database* db, int from, int to) {
  for (int i = from; i < to; ++i) {
    Value parts = Value::Set({Value::Int(i), Value::Int(i + 1000)});
    ASSERT_TRUE(db->Insert("T",
                           Value::Tuple({Field("k", Value::Int(i % 31)),
                                         Field("parts", parts)}))
                    .ok());
  }
}

TEST(ColumnarCatalogConcurrency, RebuildRaceAndSnapshotStability) {
  Database db;
  ASSERT_TRUE(db.CreateTable("T",
                             Type::Tuple({{"k", Type::Int()},
                                          {"parts", Type::Set(Type::Int())}}))
                  .ok());
  constexpr int kPhases = 6;
  constexpr int kRowsPerPhase = 200;
  constexpr int kThreads = 8;

  InsertRows(&db, 0, kRowsPerPhase);
  std::shared_ptr<const ColumnarExtent> held = db.columnar().Get(db, "T");
  ASSERT_NE(held, nullptr);

  for (int phase = 1; phase < kPhases; ++phase) {
    // Single-threaded mutation: bump the table version so the next
    // Get() races on the lazy rebuild.
    InsertRows(&db, phase * kRowsPerPhase, (phase + 1) * kRowsPerPhase);
    const size_t expect_rows =
        static_cast<size_t>((phase + 1) * kRowsPerPhase);
    const size_t held_rows = held->row_count;

    std::vector<std::shared_ptr<const ColumnarExtent>> got(kThreads);
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t]() {
        if (t % 2 == 0) {
          // Rebuilder: races the stale-entry rebuild with its peers.
          got[static_cast<size_t>(t)] = db.columnar().Get(db, "T");
        } else {
          // Validator: the pre-mutation snapshot must stay immutable
          // and alive while the cache slot is being swapped under it.
          for (int spin = 0; spin < 100; ++spin) {
            if (held->row_count != held_rows ||
                held->rows.size() != held_rows) {
              ADD_FAILURE() << "held snapshot mutated by rebuild";
              return;
            }
            const ColumnarChild* child = held->Child("parts");
            if (child == nullptr ||
                child->offsets.size() != held_rows + 1 ||
                child->elems.size() != child->offsets.back()) {
              ADD_FAILURE() << "held snapshot internally torn";
              return;
            }
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();

    // Every rebuilder got a projection of the post-mutation extent.
    // Racers may hold DIFFERENT objects for the same version (the build
    // happens outside the mutex, and the loser returns its own copy
    // unpublished) — so no same-pointer assertion here, only that every
    // returned snapshot is complete and current.
    for (int t = 0; t < kThreads; t += 2) {
      std::shared_ptr<const ColumnarExtent> fresh =
          got[static_cast<size_t>(t)];
      ASSERT_NE(fresh, nullptr);
      EXPECT_EQ(fresh->row_count, expect_rows) << "thread " << t;
      EXPECT_EQ(fresh->rows.size(), expect_rows) << "thread " << t;
      const std::vector<Value>* k = fresh->Column("k");
      ASSERT_NE(k, nullptr) << "thread " << t;
      EXPECT_EQ(k->size(), expect_rows) << "thread " << t;
      const ColumnarChild* child = fresh->Child("parts");
      ASSERT_NE(child, nullptr) << "thread " << t;
      EXPECT_EQ(child->offsets.size(), expect_rows + 1) << "thread " << t;
      // Two elements per row, all distinct within a row's set.
      EXPECT_EQ(child->elems.size(), 2 * expect_rows) << "thread " << t;
      EXPECT_NE(fresh.get(), held.get());
    }

    // The cache converged on ONE published entry for the version; a
    // follow-up Get() with no rebuild in flight returns it unchanged.
    std::shared_ptr<const ColumnarExtent> settled =
        db.columnar().Get(db, "T");
    ASSERT_NE(settled, nullptr);
    EXPECT_EQ(settled->row_count, expect_rows);
    EXPECT_EQ(settled.get(), db.columnar().Get(db, "T").get())
        << "stable version must not rebuild";

    // The old snapshot is still intact.
    EXPECT_EQ(held->row_count, held_rows);
    held = settled;
  }
}

TEST(ColumnarCatalogConcurrency, ClearWhileHoldingSnapshot) {
  Database db;
  ASSERT_TRUE(db.CreateTable("T",
                             Type::Tuple({{"k", Type::Int()},
                                          {"parts", Type::Set(Type::Int())}}))
                  .ok());
  InsertRows(&db, 0, 50);
  std::shared_ptr<const ColumnarExtent> snap = db.columnar().Get(db, "T");
  ASSERT_NE(snap, nullptr);
  db.columnar().Clear();
  // Dropping the cache must not free snapshots already handed out.
  EXPECT_EQ(snap->row_count, 50u);
  ASSERT_NE(snap->Column("k"), nullptr);
  std::shared_ptr<const ColumnarExtent> again = db.columnar().Get(db, "T");
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(again->row_count, 50u);
}

}  // namespace
}  // namespace n2j
