// Section 5.2.2 (unnesting by grouping, the Complex Object bug, Table 3)
// and Section 6.1 (the nestjoin rewrite).

#include <gtest/gtest.h>

#include "adl/analysis.h"
#include "tests/test_util.h"

namespace n2j {
namespace {

using testutil::CheckEquivalence;
using testutil::EvalExpr;
using testutil::HasNestedBaseTable;
using testutil::RewriteExpr;

bool ContainsKind(const ExprPtr& e, ExprKind kind) {
  bool found = false;
  VisitPreOrder(e, [&](const ExprPtr& n) {
    if (n->kind() == kind) found = true;
  });
  return found;
}

class GroupingTest : public ::testing::Test {
 protected:
  void SetUp() override { db_ = MakeFigure2Database(); }

  /// The Figure 1 / Figure 2 query: σ[x : x.c θ σ[y : x.a = y.a](Y)](X),
  /// with Y'-elements projected to (d = y.e) so they are comparable with
  /// the elements of x.c.
  ExprPtr PaperQuery(BinOp op) {
    ExprPtr subq = Expr::Map(
        "y",
        Expr::TupleConstruct({"d"}, {Expr::Access(Expr::Var("y"), "e")}),
        Expr::Select("y",
                     Expr::Eq(Expr::Access(Expr::Var("x"), "a"),
                              Expr::Access(Expr::Var("y"), "a")),
                     Expr::Table("Y")));
    return Expr::Select(
        "x", Expr::Bin(op, Expr::Access(Expr::Var("x"), "c"), subq),
        Expr::Table("X"));
  }

  std::unique_ptr<Database> db_;
};

TEST_F(GroupingTest, NestJoinRewriteIsEquivalentForSubsetEq) {
  // Figure 1's x.c ⊆ Y': requires grouping; the nestjoin plan must agree
  // with nested-loop evaluation, including the dangling tuple (a=2,c=∅)
  // for which ∅ ⊆ ∅ holds.
  RewriteOptions opts;  // default: nestjoin
  RewriteResult r = CheckEquivalence(*db_, PaperQuery(BinOp::kSubsetEq), opts);
  EXPECT_TRUE(r.Fired("NestJoinRewrite")) << r.TraceToString();
  EXPECT_TRUE(ContainsKind(r.expr, ExprKind::kNestJoin));
  EXPECT_FALSE(HasNestedBaseTable(r.expr));
  // The result includes the dangling tuple: a=2 (∅ ⊆ ∅) and a=1
  // ({1,2} ⊆ {1,2,3}).
  Value v = EvalExpr(*db_, r.expr);
  std::set<int64_t> as;
  for (const Value& t : v.elements()) {
    as.insert(t.FindField("a")->int_value());
  }
  EXPECT_EQ(as, (std::set<int64_t>{1, 2}));
}

TEST_F(GroupingTest, ForcedGroupingReproducesComplexObjectBug) {
  // Figure 2: the [GaWo87] grouping plan loses (a=2, c=∅).
  RewriteOptions unsafe;
  unsafe.grouping = GroupingMode::kForceGroupingUnsafe;
  ExprPtr q = PaperQuery(BinOp::kSubsetEq);
  Value correct = EvalExpr(*db_, q);
  RewriteResult r = RewriteExpr(*db_, q, unsafe);
  EXPECT_TRUE(r.Fired("GroupingUnnest(UNSAFE-forced)")) << r.TraceToString();
  Value buggy = EvalExpr(*db_, r.expr);
  EXPECT_NE(correct, buggy) << "the Complex Object bug must reproduce";
  // Exactly the dangling tuple is missing.
  std::set<int64_t> as;
  for (const Value& t : buggy.elements()) {
    as.insert(t.FindField("a")->int_value());
  }
  EXPECT_EQ(as, (std::set<int64_t>{1}));
}

TEST_F(GroupingTest, SafeGroupingAppliesWhenPEmptyIsFalse) {
  // x.c ⊂ Y' has P(x,∅) = false (Table 3): the grouping plan is safe and
  // produces the same answer as the nestjoin.
  RewriteOptions safe;
  safe.grouping = GroupingMode::kGroupingWhenSafe;
  RewriteResult r = CheckEquivalence(*db_, PaperQuery(BinOp::kSubset), safe);
  EXPECT_TRUE(r.Fired("GroupingUnnest(safe)")) << r.TraceToString();
  EXPECT_TRUE(ContainsKind(r.expr, ExprKind::kNest));
  EXPECT_TRUE(ContainsKind(r.expr, ExprKind::kJoin));
  EXPECT_FALSE(ContainsKind(r.expr, ExprKind::kNestJoin));
}

TEST_F(GroupingTest, UnsafeOperatorsFallBackToNestJoin) {
  // For ⊆ / = / ⊇ the static analysis cannot prove P(x,∅) = false, so
  // kGroupingWhenSafe must reject grouping and use the nestjoin.
  RewriteOptions safe;
  safe.grouping = GroupingMode::kGroupingWhenSafe;
  for (BinOp op : {BinOp::kSubsetEq, BinOp::kEq}) {
    RewriteResult r = CheckEquivalence(*db_, PaperQuery(op), safe);
    EXPECT_TRUE(r.Fired("GroupingRejected"))
        << BinOpName(op) << "\n"
        << r.TraceToString();
    EXPECT_TRUE(ContainsKind(r.expr, ExprKind::kNestJoin));
  }
}

TEST_F(GroupingTest, Table3StaticAnalysis) {
  // Reproduces Table 3: the value of P(x, ∅) per operator.
  ExprPtr subq = Expr::Select(
      "y", Expr::Eq(Expr::Access(Expr::Var("x"), "a"),
                    Expr::Access(Expr::Var("y"), "a")),
      Expr::Table("Y"));
  struct Row {
    BinOp op;
    TriBool expected;
  };
  const Row rows[] = {
      {BinOp::kSubset, TriBool::kFalse},     // x.c ⊂ ∅  : false
      {BinOp::kSubsetEq, TriBool::kUnknown}, // x.c ⊆ ∅  : ?
      {BinOp::kEq, TriBool::kUnknown},       // x.c = ∅  : ?
      {BinOp::kSupsetEq, TriBool::kTrue},    // x.c ⊇ ∅  : true
      {BinOp::kSupset, TriBool::kUnknown},   // x.c ⊃ ∅  : ?
      {BinOp::kContains, TriBool::kUnknown}, // x.c ∋ ∅  : ?
      {BinOp::kIn, TriBool::kFalse},         // x.c ∈ ∅  : false
  };
  for (const Row& row : rows) {
    ExprPtr pred =
        Expr::Bin(row.op, Expr::Access(Expr::Var("x"), "c"), subq);
    EXPECT_EQ(StaticValueWithEmptySubquery(pred, subq), row.expected)
        << BinOpName(row.op);
  }
}

TEST_F(GroupingTest, Table3CountPredicates) {
  ExprPtr subq = Expr::Select(
      "y", Expr::Eq(Expr::Access(Expr::Var("x"), "a"),
                    Expr::Access(Expr::Var("y"), "a")),
      Expr::Table("Y"));
  // count(Y') = 0 is true for the empty subquery (dangling tuples DO
  // belong in the answer: the grouping plan would be buggy).
  ExprPtr count_eq0 = Expr::Eq(Expr::Agg(AggKind::kCount, subq),
                               Expr::Const(Value::Int(0)));
  EXPECT_EQ(StaticValueWithEmptySubquery(count_eq0, subq), TriBool::kTrue);
  // count(Y') > 0 is false for the empty subquery: grouping is safe.
  ExprPtr count_gt0 = Expr::Bin(BinOp::kGt, Expr::Agg(AggKind::kCount, subq),
                                Expr::Const(Value::Int(0)));
  EXPECT_EQ(StaticValueWithEmptySubquery(count_gt0, subq), TriBool::kFalse);
  // x.a = count(Y') is run-time dependent.
  ExprPtr runtime = Expr::Eq(Expr::Access(Expr::Var("x"), "a"),
                             Expr::Agg(AggKind::kCount, subq));
  EXPECT_EQ(StaticValueWithEmptySubquery(runtime, subq), TriBool::kUnknown);
}

TEST_F(GroupingTest, NestingInSelectClauseUsesNestJoin) {
  // Example Query 6's shape: α[x : (a = x.a, ms = σ[y : x.a = y.a](Y))](X)
  // ⇒ map over nestjoin; dangling x tuples keep ms = ∅.
  ExprPtr subq = Expr::Select(
      "y", Expr::Eq(Expr::Access(Expr::Var("x"), "a"),
                    Expr::Access(Expr::Var("y"), "a")),
      Expr::Table("Y"));
  ExprPtr body = Expr::TupleConstruct(
      {"a", "ms"}, {Expr::Access(Expr::Var("x"), "a"), subq});
  ExprPtr e = Expr::Map("x", body, Expr::Table("X"));
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("NestJoinRewrite")) << r.TraceToString();
  EXPECT_TRUE(ContainsKind(r.expr, ExprKind::kNestJoin));
  Value v = EvalExpr(*db_, r.expr);
  ASSERT_EQ(v.set_size(), 3u);
  for (const Value& t : v.elements()) {
    if (t.FindField("a")->int_value() == 2) {
      EXPECT_EQ(t.FindField("ms")->set_size(), 0u);
    }
  }
}

TEST_F(GroupingTest, AggregateBetweenBlocksUsesNestJoin) {
  // σ[x : x.a <= count(Y')](X) — the Kim82 class of queries with an
  // aggregate between blocks.
  ExprPtr subq = Expr::Select(
      "y", Expr::Eq(Expr::Access(Expr::Var("x"), "a"),
                    Expr::Access(Expr::Var("y"), "a")),
      Expr::Table("Y"));
  ExprPtr e = Expr::Select(
      "x",
      Expr::Bin(BinOp::kLe, Expr::Access(Expr::Var("x"), "a"),
                Expr::Agg(AggKind::kCount, subq)),
      Expr::Table("X"));
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("NestJoinRewrite")) << r.TraceToString();
  EXPECT_FALSE(HasNestedBaseTable(r.expr));
}

TEST_F(GroupingTest, CountBugReproductionWithForcedGrouping) {
  // The classical COUNT bug: σ[x : 0 = count(Y')](X) — dangling tuples
  // must be in the answer; forced grouping drops them.
  ExprPtr subq = Expr::Select(
      "y", Expr::Eq(Expr::Access(Expr::Var("x"), "a"),
                    Expr::Access(Expr::Var("y"), "a")),
      Expr::Table("Y"));
  ExprPtr e = Expr::Select(
      "x",
      Expr::Eq(Expr::Const(Value::Int(0)), Expr::Agg(AggKind::kCount, subq)),
      Expr::Table("X"));
  Value correct = EvalExpr(*db_, e);
  EXPECT_EQ(correct.set_size(), 1u);  // only a=2 has an empty subquery

  RewriteOptions unsafe;
  unsafe.grouping = GroupingMode::kForceGroupingUnsafe;
  // Disable the Table 2 rewriting, which would (correctly!) turn this
  // into an antijoin before grouping ever sees it.
  unsafe.enable_setcmp = false;
  unsafe.enable_quantifier = false;
  RewriteResult r = RewriteExpr(*db_, e, unsafe);
  ASSERT_TRUE(r.Fired("GroupingUnnest(UNSAFE-forced)")) << r.TraceToString();
  Value buggy = EvalExpr(*db_, r.expr);
  EXPECT_EQ(buggy.set_size(), 0u) << "the COUNT bug must reproduce";
}

TEST_F(GroupingTest, CountPredicateViaTable2IsCorrect) {
  // With the full pipeline the same query becomes an antijoin and stays
  // correct — the paper's point that ∈/∅-style predicates never need
  // grouping.
  ExprPtr subq = Expr::Select(
      "y", Expr::Eq(Expr::Access(Expr::Var("x"), "a"),
                    Expr::Access(Expr::Var("y"), "a")),
      Expr::Table("Y"));
  ExprPtr e = Expr::Select(
      "x",
      Expr::Eq(Expr::Const(Value::Int(0)), Expr::Agg(AggKind::kCount, subq)),
      Expr::Table("X"));
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("Table2-CountZero")) << r.TraceToString();
  EXPECT_TRUE(r.Fired("Rule1-AntiJoin")) << r.TraceToString();
}

TEST_F(GroupingTest, GroupingModeNoneLeavesNestedLoops) {
  RewriteOptions none;
  none.grouping = GroupingMode::kNone;
  RewriteResult r = CheckEquivalence(*db_, PaperQuery(BinOp::kSubsetEq), none);
  EXPECT_FALSE(ContainsKind(r.expr, ExprKind::kNestJoin));
  EXPECT_TRUE(HasNestedBaseTable(r.expr));
}

}  // namespace
}  // namespace n2j
