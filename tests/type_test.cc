#include "adl/type.h"

#include <gtest/gtest.h>

namespace n2j {
namespace {

TEST(TypeTest, AtomSingletonsAndPredicates) {
  EXPECT_TRUE(Type::Int()->is_int());
  EXPECT_TRUE(Type::Int()->is_numeric());
  EXPECT_TRUE(Type::Double()->is_numeric());
  EXPECT_FALSE(Type::String()->is_numeric());
  EXPECT_EQ(Type::Int().get(), Type::Int().get());  // interned
}

TEST(TypeTest, TupleFields) {
  TypePtr t = Type::Tuple({{"a", Type::Int()}, {"b", Type::String()}});
  ASSERT_TRUE(t->is_tuple());
  EXPECT_TRUE(t->FindField("a")->is_int());
  EXPECT_TRUE(t->FindField("b")->is_string());
  EXPECT_EQ(t->FindField("c"), nullptr);
  EXPECT_EQ(t->FieldNames(), (std::vector<std::string>{"a", "b"}));
}

TEST(TypeTest, StructuralEquality) {
  TypePtr t1 = Type::Set(Type::Tuple({{"a", Type::Int()}}));
  TypePtr t2 = Type::Set(Type::Tuple({{"a", Type::Int()}}));
  TypePtr t3 = Type::Set(Type::Tuple({{"a", Type::String()}}));
  TypePtr t4 = Type::Set(Type::Tuple({{"b", Type::Int()}}));
  EXPECT_TRUE(t1->Equals(*t2));
  EXPECT_FALSE(t1->Equals(*t3));
  EXPECT_FALSE(t1->Equals(*t4));
}

TEST(TypeTest, RefEqualityByClassName) {
  EXPECT_TRUE(Type::Ref("Part")->Equals(*Type::Ref("Part")));
  EXPECT_FALSE(Type::Ref("Part")->Equals(*Type::Ref("Supplier")));
}

TEST(TypeTest, AnyEqualsEverything) {
  EXPECT_TRUE(Type::Any()->Equals(*Type::Int()));
  EXPECT_TRUE(Type::Set(Type::Any())->Equals(*Type::Set(Type::Int())));
}

TEST(TypeTest, ComparableWith) {
  EXPECT_TRUE(Type::Int()->ComparableWith(*Type::Double()));
  EXPECT_TRUE(Type::Ref("Part")->ComparableWith(*Type::OidType()));
  EXPECT_TRUE(Type::OidType()->ComparableWith(*Type::Ref("Part")));
  EXPECT_FALSE(Type::Int()->ComparableWith(*Type::String()));
}

TEST(TypeTest, ToStringRendering) {
  EXPECT_EQ(Type::Int()->ToString(), "int");
  EXPECT_EQ(Type::Ref("Part")->ToString(), "Ref(Part)");
  TypePtr t = Type::Set(Type::Tuple({{"a", Type::Int()}}));
  EXPECT_EQ(t->ToString(), "{ (a : int) }");
}

TEST(TypeTest, TableTypeHelper) {
  TypePtr t = TableType({{"a", Type::Int()}});
  EXPECT_TRUE(t->is_set());
  EXPECT_TRUE(t->element()->is_tuple());
}

}  // namespace
}  // namespace n2j
