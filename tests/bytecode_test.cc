// Tests for the bytecode compiler and VM (exec/bytecode.h,
// exec/compile.h): coverage of every ExprKind (lower fully or fall back
// cleanly, never mis-evaluate), golden disassembly for the paper's
// Figure-1 lambdas, frame reuse across tuples and worker threads, and
// error parity with the tree interpreter.

#include "exec/compile.h"

#include <gtest/gtest.h>

#include "exec/bytecode.h"
#include "storage/datagen.h"
#include "tests/test_util.h"

namespace n2j {
namespace {

using testutil::EvalExpr;

class BytecodeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeFigure2Database();  // X(a, c:{(d)}), Y(a, e)
  }

  /// Compiles `body` as a one-parameter lambda over `var` against an
  /// empty environment.
  CompiledLambda CompileBody(const ExprPtr& body, const std::string& var,
                             const TupleShape* shape = nullptr) {
    CompiledLambda cl;
    Environment env;
    Evaluator ev(*db_);
    cl.Compile(ev, *body, {var}, env, shape);
    return cl;
  }

  /// Evaluates α[x : body](X) compiled and interpreted; expects equal
  /// values and returns the (shared) result.
  Value MapBothEngines(const ExprPtr& body) {
    ExprPtr e = Expr::Map("x", body, Expr::Table("X"));
    EvalOptions interp;
    interp.compiled = false;
    Value want = EvalExpr(*db_, e, interp);
    Value got = EvalExpr(*db_, e);  // compiled on by default
    EXPECT_EQ(want, got) << AlgebraStr(e);
    return got;
  }

  std::unique_ptr<Database> db_;
};

// ---- Coverage: every ExprKind either lowers or cleanly falls back ----

TEST_F(BytecodeTest, ScalarKindsLower) {
  ExprPtr xa = Expr::Access(Expr::Var("x"), "a");
  struct Case {
    const char* label;
    ExprPtr body;
  };
  const Case lowerable[] = {
      {"const", Expr::Const(Value::Int(7))},
      {"var", Expr::Var("x")},
      {"table", Expr::Table("Y")},
      {"let", Expr::Let("v", xa, Expr::Bin(BinOp::kAdd, Expr::Var("v"),
                                           Expr::Var("v")))},
      {"field", xa},
      {"tuple-project", Expr::TupleProject(Expr::Var("x"), {"a"})},
      {"tuple-construct", Expr::TupleConstruct({"k"}, {xa})},
      {"tuple-concat",
       Expr::TupleConcat(Expr::TupleConstruct({"p"}, {xa}),
                         Expr::TupleConstruct({"q"}, {xa}))},
      {"except", Expr::ExceptOp(Expr::Var("x"), {"a"},
                                {Expr::Const(Value::Int(0))})},
      {"set-construct", Expr::SetConstruct({xa, Expr::Const(Value::Int(1))})},
      {"unary", Expr::Un(UnOp::kNeg, xa)},
      {"binary", Expr::Bin(BinOp::kMul, xa, xa)},
      {"and-or", Expr::Or(Expr::Eq(xa, Expr::Const(Value::Int(1))),
                          Expr::Not(Expr::Eq(xa, xa)))},
      {"quantifier",
       Expr::Quant(QuantKind::kExists, "y", Expr::Table("Y"),
                   Expr::Eq(Expr::Access(Expr::Var("y"), "a"), xa))},
      {"aggregate", Expr::Agg(AggKind::kCount,
                              Expr::Access(Expr::Var("x"), "c"))},
      {"union", Expr::Union(Expr::Access(Expr::Var("x"), "c"),
                            Expr::Access(Expr::Var("x"), "c"))},
      {"intersect", Expr::Intersect(Expr::Access(Expr::Var("x"), "c"),
                                    Expr::Access(Expr::Var("x"), "c"))},
      {"difference", Expr::Difference(Expr::Access(Expr::Var("x"), "c"),
                                      Expr::Access(Expr::Var("x"), "c"))},
  };
  for (const Case& c : lowerable) {
    CompiledLambda cl = CompileBody(c.body, "x");
    EXPECT_TRUE(cl.ok()) << c.label;
    EXPECT_FALSE(cl.fallback()) << c.label;
    MapBothEngines(c.body);
  }
}

TEST_F(BytecodeTest, IteratorKindsFallBack) {
  ExprPtr y = Expr::Table("Y");
  ExprPtr x_c = Expr::Access(Expr::Var("x"), "c");
  // A one-tuple set with fields disjoint from Y's, so product/join
  // concatenation cannot hit an attribute-name conflict.
  ExprPtr p1 = Expr::SetConstruct(
      {Expr::TupleConstruct({"p"}, {Expr::Const(Value::Int(1))})});
  struct Case {
    const char* label;
    ExprPtr body;
  };
  const Case fallbacks[] = {
      {"map", Expr::Map("y", Expr::Access(Expr::Var("y"), "a"), y)},
      {"select", Expr::Select("y", Expr::True(), y)},
      {"project", Expr::Project(y, {"a"})},
      {"flatten", Expr::Flatten(Expr::SetConstruct({x_c}))},
      {"nest", Expr::Nest(y, {"e"}, "es")},
      {"unnest", Expr::Unnest(Expr::Table("X"), "c")},
      {"product", Expr::Product(p1, y)},
      {"join", Expr::Join(p1, y, "u", "v", Expr::True())},
      {"semijoin", Expr::SemiJoin(y, y, "u", "v", Expr::True())},
      {"antijoin", Expr::AntiJoin(y, y, "u", "v", Expr::True())},
      {"nestjoin", Expr::NestJoin(y, y, "u", "v", Expr::True(), "g",
                                  Expr::Var("v"))},
      {"divide", Expr::Divide(y, Expr::Project(y, {"e"}))},
  };
  for (const Case& c : fallbacks) {
    CompiledLambda cl = CompileBody(c.body, "x");
    EXPECT_FALSE(cl.ok()) << c.label;
    EXPECT_TRUE(cl.fallback()) << c.label;
    // The per-operator fallback must still produce the interpreter's
    // result when the body sits inside a map.
    MapBothEngines(c.body);
  }
}

TEST_F(BytecodeTest, UnboundVariableFallsBack) {
  CompiledLambda cl = CompileBody(Expr::Var("nope"), "x");
  EXPECT_TRUE(cl.fallback());
}

TEST_F(BytecodeTest, UnknownTableFallsBack) {
  CompiledLambda cl = CompileBody(Expr::Table("NOPE"), "x");
  EXPECT_TRUE(cl.fallback());
}

TEST_F(BytecodeTest, FreeVariablesAreCapturedByValue) {
  CompiledLambda cl;
  Environment env;
  env.Push("k", Value::Int(10));
  Evaluator ev(*db_);
  ExprPtr body = Expr::Bin(BinOp::kAdd, Expr::Var("x"), Expr::Var("k"));
  cl.Compile(ev, *body, {"x"}, env);
  ASSERT_TRUE(cl.ok());
  Value* r = cl.Run(Value::Int(5));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(*r, Value::Int(15));
}

TEST_F(BytecodeTest, DerefLowersAndMatchesInterpreter) {
  auto sp = testutil::SmallSupplierDb();
  // α[d : deref(d.supplier).sname](DELIVERY) — an oid hop per tuple.
  ExprPtr body = Expr::Access(
      Expr::Deref(Expr::Access(Expr::Var("d"), "supplier"), "Supplier"),
      "sname");
  ExprPtr e = Expr::Map("d", body, Expr::Table("DELIVERY"));
  EvalOptions interp;
  interp.compiled = false;
  EXPECT_EQ(EvalExpr(*sp, e, interp), EvalExpr(*sp, e));
}

// ---- Golden disassembly for the Figure-1 lambdas --------------------

TEST_F(BytecodeTest, GoldenDisassemblyFig1EquiKeyPredicate) {
  // The Figure-1 correlation predicate x.a = y.a, compiled as the
  // residual-style two-parameter lambda with the X row shape known.
  ExprPtr pred = Expr::Eq(Expr::Access(Expr::Var("x"), "a"),
                          Expr::Access(Expr::Var("y"), "a"));
  CompiledLambda cl;
  Environment env;
  Evaluator ev(*db_);
  const TupleShape* xs = FirstElemShape(EvalExpr(*db_, Expr::Table("X")));
  cl.Compile(ev, *pred, {"x", "y"}, env, xs);
  ASSERT_TRUE(cl.ok());
  EXPECT_EQ(cl.program()->Disassemble(),
            "program regs=5 params=2\n"
            "  0: field   r2 <- r0 .a@0\n"
            "  1: field   r3 <- r1 .a\n"
            "  2: binary  r4 <- r2 = r3\n"
            "ret r4\n");
}

TEST_F(BytecodeTest, GoldenDisassemblyFig1MapBody) {
  // The subquery's map body (d = y.e) from Figure 1.
  ExprPtr body = Expr::TupleConstruct(
      {"d"}, {Expr::Access(Expr::Var("y"), "e")});
  CompiledLambda cl;
  Environment env;
  Evaluator ev(*db_);
  const TupleShape* ys = FirstElemShape(EvalExpr(*db_, Expr::Table("Y")));
  cl.Compile(ev, *body, {"y"}, env, ys);
  ASSERT_TRUE(cl.ok());
  EXPECT_EQ(cl.program()->Disassemble(),
            "program regs=3 params=1\n"
            "  0: field   r1 <- r0 .e@1\n"
            "  1: tuple   r2 <- (d = r1)\n"
            "ret r2\n");
}

TEST_F(BytecodeTest, GoldenDisassemblyShortCircuitAnd) {
  // x.a = 1 and x.a < 9 — the and-probe jumps over the rhs region.
  ExprPtr pred = Expr::And(
      Expr::Eq(Expr::Access(Expr::Var("x"), "a"), Expr::Const(Value::Int(1))),
      Expr::Bin(BinOp::kLt, Expr::Access(Expr::Var("x"), "a"),
                Expr::Const(Value::Int(9))));
  CompiledLambda cl;
  Environment env;
  Evaluator ev(*db_);
  const TupleShape* xs = FirstElemShape(EvalExpr(*db_, Expr::Table("X")));
  cl.Compile(ev, *pred, {"x"}, env, xs);
  ASSERT_TRUE(cl.ok());
  EXPECT_EQ(cl.program()->Disassemble(),
            "program regs=8 params=1\n"
            "  0: field   r1 <- r0 .a@0\n"
            "  1: const   r2 <- 1\n"
            "  2: binary  r3 <- r1 = r2\n"
            "  3: and?    r4 <- r3 else jump 8\n"
            "  4: field   r5 <- r0 .a@0\n"
            "  5: const   r6 <- 9\n"
            "  6: binary  r7 <- r5 < r6\n"
            "  7: bool    r4 <- r7\n"
            "ret r4\n");
}

TEST_F(BytecodeTest, GoldenDisassemblyJoinKeyExtractor) {
  // Composite join key (x.a, x.a + 1) as built for the hash join.
  std::vector<ExprPtr> keys = {
      Expr::Access(Expr::Var("x"), "a"),
      Expr::Bin(BinOp::kAdd, Expr::Access(Expr::Var("x"), "a"),
                Expr::Const(Value::Int(1)))};
  CompiledLambda cl;
  Environment env;
  Evaluator ev(*db_);
  const TupleShape* xs = FirstElemShape(EvalExpr(*db_, Expr::Table("X")));
  cl.CompileKey(ev, keys, "x", env, xs);
  ASSERT_TRUE(cl.ok());
  EXPECT_EQ(cl.program()->Disassemble(),
            "program regs=6 params=1\n"
            "  0: field   r1 <- r0 .a@0\n"
            "  1: field   r2 <- r0 .a@0\n"
            "  2: const   r3 <- 1\n"
            "  3: binary  r4 <- r2 + r3\n"
            "  4: key     r5 <- [r1, r4]\n"
            "ret r5\n");
}

// ---- Frame reuse ----------------------------------------------------

TEST_F(BytecodeTest, FrameIsReusedAcrossTuples) {
  // One program, many Run calls; the register frame must deliver fresh
  // results every time (no stale state across tuples).
  CompiledLambda cl;
  Environment env;
  Evaluator ev(*db_);
  ExprPtr body = Expr::Bin(BinOp::kMul, Expr::Var("x"), Expr::Var("x"));
  cl.Compile(ev, *body, {"x"}, env);
  ASSERT_TRUE(cl.ok());
  for (int i = 0; i < 100; ++i) {
    Value* r = cl.Run(Value::Int(i));
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(*r, Value::Int(static_cast<int64_t>(i) * i));
  }
}

TEST_F(BytecodeTest, WorkerFramesMatchSerialUnderParallelism) {
  // Same value and *exact* same counters under num_threads 1 and 4:
  // each worker compiles its own frame, and the per-worker counters
  // merge to the serial totals.
  auto db = std::make_unique<Database>();
  XYConfig config;
  config.seed = 11;
  config.x_rows = 64;
  config.y_rows = 48;
  ASSERT_TRUE(AddRandomXY(db.get(), config).ok());
  ExprPtr e = Expr::Select(
      "x",
      Expr::Quant(QuantKind::kExists, "y", Expr::Table("Y"),
                  Expr::Eq(Expr::Access(Expr::Var("y"), "a"),
                           Expr::Access(Expr::Var("x"), "a"))),
      Expr::Table("X"));
  EvalOptions serial_opts;
  Evaluator serial(*db, serial_opts);
  Result<Value> sv = serial.Eval(e);
  ASSERT_TRUE(sv.ok());
  EXPECT_GT(serial.stats().compiled_evals, 0u);

  EvalOptions mt_opts;
  mt_opts.num_threads = 4;
  Evaluator mt(*db, mt_opts);
  Result<Value> mv = mt.Eval(e);
  ASSERT_TRUE(mv.ok());

  EXPECT_EQ(*sv, *mv);
  EXPECT_EQ(serial.stats(), mt.stats())
      << "serial: " << serial.stats().ToString()
      << "\n4-thread: " << mt.stats().ToString();
}

// ---- Error parity ---------------------------------------------------

TEST_F(BytecodeTest, RuntimeErrorsMatchInterpreter) {
  struct Case {
    const char* label;
    ExprPtr body;
  };
  ExprPtr xa = Expr::Access(Expr::Var("x"), "a");
  const Case cases[] = {
      {"division by zero",
       Expr::Bin(BinOp::kDiv, xa, Expr::Const(Value::Int(0)))},
      {"missing field", Expr::Access(Expr::Var("x"), "zzz")},
      {"field access on non-tuple", Expr::Access(xa, "a")},
      {"arithmetic on non-numeric",
       Expr::Bin(BinOp::kAdd, xa, Expr::Const(Value::String("s")))},
      {"not on non-bool", Expr::Not(xa)},
      {"in rhs not a set", Expr::Bin(BinOp::kIn, xa, xa)},
      {"aggregate over non-set", Expr::Agg(AggKind::kSum, xa)},
      {"except on non-tuple",
       Expr::ExceptOp(xa, {"a"}, {Expr::Const(Value::Int(0))})},
  };
  for (const Case& c : cases) {
    ExprPtr e = Expr::Map("x", c.body, Expr::Table("X"));
    EvalOptions interp;
    interp.compiled = false;
    Evaluator iev(*db_, interp);
    Result<Value> ir = iev.Eval(e);
    Evaluator cev(*db_);
    Result<Value> cr = cev.Eval(e);
    ASSERT_FALSE(ir.ok()) << c.label;
    ASSERT_FALSE(cr.ok()) << c.label;
    EXPECT_EQ(ir.status().ToString(), cr.status().ToString()) << c.label;
  }
}

TEST_F(BytecodeTest, ShortCircuitMasksRhsErrorInBothEngines) {
  // false and (1/0 = 1): the rhs must never evaluate — in the VM the
  // and-probe jumps over the region, including its const loads.
  ExprPtr body = Expr::And(
      Expr::False(),
      Expr::Eq(Expr::Bin(BinOp::kDiv, Expr::Const(Value::Int(1)),
                         Expr::Const(Value::Int(0))),
               Expr::Const(Value::Int(1))));
  EXPECT_EQ(MapBothEngines(body), Value::Set({Value::Bool(false)}));
}

TEST_F(BytecodeTest, CompiledOffMeansNoCompiledEvals) {
  EvalOptions opts;
  opts.compiled = false;
  Evaluator ev(*db_, opts);
  ExprPtr e = Expr::Map("x", Expr::Access(Expr::Var("x"), "a"),
                        Expr::Table("X"));
  ASSERT_TRUE(ev.Eval(e).ok());
  EXPECT_EQ(ev.stats().compiled_evals, 0u);
  EXPECT_EQ(ev.stats().interp_fallback_evals, 0u);
}

TEST_F(BytecodeTest, FallbackEvalsAreCounted) {
  // A body containing a nested select cannot compile; the per-tuple
  // interpreter evaluations are surfaced in the stats.
  ExprPtr body = Expr::Agg(
      AggKind::kCount,
      Expr::Select("y",
                   Expr::Eq(Expr::Access(Expr::Var("y"), "a"),
                            Expr::Access(Expr::Var("x"), "a")),
                   Expr::Table("Y")));
  ExprPtr e = Expr::Map("x", body, Expr::Table("X"));
  Evaluator ev(*db_);
  ASSERT_TRUE(ev.Eval(e).ok());
  Value x = EvalExpr(*db_, Expr::Table("X"));
  EXPECT_EQ(ev.stats().interp_fallback_evals, x.set_size());
}

}  // namespace
}  // namespace n2j
