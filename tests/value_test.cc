#include "adl/value.h"

#include <gtest/gtest.h>

namespace n2j {
namespace {

Value T2(const char* f1, int64_t v1, const char* f2, int64_t v2) {
  return Value::Tuple({Field(f1, Value::Int(v1)), Field(f2, Value::Int(v2))});
}

TEST(ValueTest, AtomBasics) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).bool_value(), true);
  EXPECT_EQ(Value::Int(42).int_value(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::String("hi").string_value(), "hi");
  Oid oid = MakeOid(3, 17);
  EXPECT_EQ(Value::MakeOidValue(oid).oid_value(), oid);
  EXPECT_EQ(OidClassId(oid), 3);
  EXPECT_EQ(OidSeq(oid), 17u);
}

TEST(ValueTest, NumericComparisonAcrossKinds) {
  EXPECT_EQ(Value::Int(1), Value::Double(1.0));
  EXPECT_LT(Value::Int(1), Value::Double(1.5));
  EXPECT_LT(Value::Double(0.5), Value::Int(1));
  // Hash must agree with equality for integral doubles.
  EXPECT_EQ(Value::Int(7).Hash(), Value::Double(7.0).Hash());
}

TEST(ValueTest, TupleFieldAccess) {
  Value t = T2("a", 1, "b", 2);
  ASSERT_TRUE(t.is_tuple());
  EXPECT_EQ(t.FindField("a")->int_value(), 1);
  EXPECT_EQ(t.FindField("b")->int_value(), 2);
  EXPECT_EQ(t.FindField("c"), nullptr);
  EXPECT_EQ(t.FieldNames(), (std::vector<std::string>{"a", "b"}));
}

TEST(ValueTest, TupleProjectPreservesRequestedOrder) {
  Value t = T2("a", 1, "b", 2);
  Value p = t.ProjectTuple({"b", "a"});
  EXPECT_EQ(p.field_name(0), "b");
  EXPECT_EQ(p.field_name(1), "a");
}

TEST(ValueTest, TupleConcat) {
  Value t = T2("a", 1, "b", 2).ConcatTuple(
      Value::Tuple({Field("c", Value::Int(3))}));
  EXPECT_EQ(t.tuple_size(), 3u);
  EXPECT_EQ(t.FindField("c")->int_value(), 3);
}

TEST(ValueTest, ExceptUpdatesAndExtends) {
  Value t = T2("a", 1, "b", 2);
  Value u = t.ExceptUpdate(
      {Field("b", Value::Int(20)), Field("c", Value::Int(3))});
  EXPECT_EQ(u.FindField("a")->int_value(), 1);
  EXPECT_EQ(u.FindField("b")->int_value(), 20);
  EXPECT_EQ(u.FindField("c")->int_value(), 3);
}

TEST(ValueTest, SetCanonicalization) {
  Value s = Value::Set({Value::Int(3), Value::Int(1), Value::Int(3),
                        Value::Int(2)});
  ASSERT_EQ(s.set_size(), 3u);
  EXPECT_EQ(s.elements()[0].int_value(), 1);
  EXPECT_EQ(s.elements()[2].int_value(), 3);
  // Order-insensitive equality.
  EXPECT_EQ(s, Value::Set({Value::Int(2), Value::Int(3), Value::Int(1)}));
}

TEST(ValueTest, SetMembershipAndSubset) {
  Value s = Value::Set({Value::Int(1), Value::Int(2), Value::Int(3)});
  EXPECT_TRUE(s.SetContains(Value::Int(2)));
  EXPECT_FALSE(s.SetContains(Value::Int(9)));
  Value sub = Value::Set({Value::Int(1), Value::Int(3)});
  EXPECT_TRUE(sub.IsSubsetOf(s, false));
  EXPECT_TRUE(sub.IsSubsetOf(s, true));
  EXPECT_TRUE(s.IsSubsetOf(s, false));
  EXPECT_FALSE(s.IsSubsetOf(s, true));   // not a proper subset of itself
  EXPECT_FALSE(s.IsSubsetOf(sub, false));
}

TEST(ValueTest, EmptySetEdgeCases) {
  Value e = Value::EmptySet();
  Value s = Value::Set({Value::Int(1)});
  EXPECT_TRUE(e.IsSubsetOf(s, false));
  EXPECT_TRUE(e.IsSubsetOf(s, true));
  EXPECT_TRUE(e.IsSubsetOf(e, false));
  EXPECT_FALSE(e.IsSubsetOf(e, true));
  EXPECT_FALSE(s.IsSubsetOf(e, false));
  EXPECT_EQ(e.set_size(), 0u);
}

TEST(ValueTest, SetAlgebra) {
  Value a = Value::Set({Value::Int(1), Value::Int(2)});
  Value b = Value::Set({Value::Int(2), Value::Int(3)});
  EXPECT_EQ(a.SetUnion(b),
            Value::Set({Value::Int(1), Value::Int(2), Value::Int(3)}));
  EXPECT_EQ(a.SetIntersect(b), Value::Set({Value::Int(2)}));
  EXPECT_EQ(a.SetDifference(b), Value::Set({Value::Int(1)}));
}

TEST(ValueTest, NestedSetEquality) {
  Value s1 = Value::Set({T2("a", 1, "b", 2), T2("a", 3, "b", 4)});
  Value s2 = Value::Set({T2("a", 3, "b", 4), T2("a", 1, "b", 2)});
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1.Hash(), s2.Hash());
}

TEST(ValueTest, CompareIsTotalOrderOverKinds) {
  std::vector<Value> vals = {
      Value::Null(),  Value::Bool(false), Value::Int(1),
      Value::String("a"), Value::MakeOidValue(MakeOid(1, 1)),
      T2("a", 1, "b", 2), Value::Set({Value::Int(1)})};
  for (size_t i = 0; i < vals.size(); ++i) {
    EXPECT_EQ(vals[i].Compare(vals[i]), 0);
    for (size_t j = i + 1; j < vals.size(); ++j) {
      int ij = vals[i].Compare(vals[j]);
      int ji = vals[j].Compare(vals[i]);
      EXPECT_EQ(ij, -ji) << i << " vs " << j;
      EXPECT_NE(ij, 0) << i << " vs " << j;
    }
  }
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Int(5).ToString(), "5");
  EXPECT_EQ(Value::String("x").ToString(), "\"x\"");
  EXPECT_EQ(T2("a", 1, "b", 2).ToString(), "(a = 1, b = 2)");
  EXPECT_EQ(Value::Set({Value::Int(2), Value::Int(1)}).ToString(), "{1, 2}");
  EXPECT_EQ(Value::EmptySet().ToString(), "{}");
}

TEST(ValueTest, SetsOfSets) {
  Value inner1 = Value::Set({Value::Int(1)});
  Value inner2 = Value::Set({Value::Int(2)});
  Value outer = Value::Set({inner2, inner1, inner1});
  EXPECT_EQ(outer.set_size(), 2u);
  EXPECT_TRUE(outer.SetContains(inner1));
  EXPECT_FALSE(outer.SetContains(Value::EmptySet()));
}

TEST(ValueTest, ApproxBytesGrowsWithContent) {
  Value small = Value::Int(1);
  Value big = Value::Set({T2("a", 1, "b", 2), T2("a", 3, "b", 4)});
  EXPECT_LT(small.ApproxBytes(), big.ApproxBytes());
}

}  // namespace
}  // namespace n2j
