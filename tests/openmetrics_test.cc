// OpenMetrics exposition shape (ISSUE 10): family naming (`_total`
// stripping), TYPE lines, cumulative histogram buckets ending at +Inf,
// merged lexicographic family order, and the mandatory trailing # EOF.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/openmetrics.h"

namespace n2j {
namespace obs {
namespace {

std::vector<std::string> Lines(const std::string& doc) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start < doc.size()) {
    size_t end = doc.find('\n', start);
    if (end == std::string::npos) {
      out.push_back(doc.substr(start));
      break;
    }
    out.push_back(doc.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

TEST(OpenMetrics, EmptyRegistryIsJustEof) {
  MetricsRegistry reg;
  EXPECT_EQ(RenderOpenMetrics(reg), "# EOF\n");
}

TEST(OpenMetrics, CounterFamilyStripsTotalSuffix) {
  MetricsRegistry reg;
  reg.GetCounter("n2j_queries_total").Add(3);
  std::string doc = RenderOpenMetrics(reg);
  EXPECT_EQ(doc,
            "# TYPE n2j_queries counter\n"
            "n2j_queries_total 3\n"
            "# EOF\n");
}

TEST(OpenMetrics, NonTotalCounterExportsAsGauge) {
  MetricsRegistry reg;
  reg.GetCounter("n2j_resident_rows").Add(7);
  std::string doc = RenderOpenMetrics(reg);
  EXPECT_EQ(doc,
            "# TYPE n2j_resident_rows gauge\n"
            "n2j_resident_rows 7\n"
            "# EOF\n");
}

TEST(OpenMetrics, HistogramBucketsAreCumulativeAndEndAtInf) {
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram("n2j_query_ms");
  h.Observe(0.005);  // first bucket (le 0.01)
  h.Observe(0.005);
  h.Observe(0.75);   // le 1 bucket
  h.Observe(5000.0); // beyond the last bound: +Inf only
  std::string doc = RenderOpenMetrics(reg);
  std::vector<std::string> lines = Lines(doc);

  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines[0], "# TYPE n2j_query_ms histogram");
  // One line per bucket bound, then +Inf, count, sum, EOF.
  ASSERT_EQ(lines.size(),
            1u + static_cast<size_t>(Histogram::kNumBuckets) + 2u + 1u);
  EXPECT_EQ(lines[1], "n2j_query_ms_bucket{le=\"0.01\"} 2");
  // Cumulative: the le="1" bucket includes the two 5µs observations.
  bool saw_le1 = false;
  for (const std::string& l : lines) {
    if (l == "n2j_query_ms_bucket{le=\"1\"} 3") saw_le1 = true;
  }
  EXPECT_TRUE(saw_le1) << doc;
  EXPECT_EQ(lines[Histogram::kNumBuckets],
            "n2j_query_ms_bucket{le=\"+Inf\"} 4");
  EXPECT_EQ(lines[Histogram::kNumBuckets + 1], "n2j_query_ms_count 4");
  EXPECT_EQ(lines[Histogram::kNumBuckets + 2].rfind("n2j_query_ms_sum ", 0),
            0u);
  EXPECT_EQ(lines.back(), "# EOF");
}

TEST(OpenMetrics, FamiliesMergeInLexicographicOrder) {
  MetricsRegistry reg;
  reg.GetCounter("n2j_zeta_total").Add(1);
  reg.GetHistogram("n2j_middle_ms").Observe(1.0);
  reg.GetCounter("n2j_alpha_total").Add(1);
  std::string doc = RenderOpenMetrics(reg);
  size_t alpha = doc.find("# TYPE n2j_alpha counter");
  size_t middle = doc.find("# TYPE n2j_middle_ms histogram");
  size_t zeta = doc.find("# TYPE n2j_zeta counter");
  ASSERT_NE(alpha, std::string::npos);
  ASSERT_NE(middle, std::string::npos);
  ASSERT_NE(zeta, std::string::npos);
  // Counter and histogram families interleave in one name order.
  EXPECT_LT(alpha, middle);
  EXPECT_LT(middle, zeta);
  // Rendering is deterministic.
  EXPECT_EQ(doc, RenderOpenMetrics(reg));
}

TEST(OpenMetrics, GlobalRegistryDocumentIsWellTerminated) {
  // Whatever other tests have fed the global registry, the document
  // always ends with the spec's EOF marker and every TYPE line names a
  // family that appears in a sample.
  std::string doc = RenderOpenMetrics();
  ASSERT_GE(doc.size(), 6u);
  EXPECT_EQ(doc.substr(doc.size() - 6), "# EOF\n");
}

}  // namespace
}  // namespace obs
}  // namespace n2j
