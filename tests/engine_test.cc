// Integration tests of the QueryEngine façade: option plumbing, explain
// output, error propagation, and the interaction of rewrite and
// execution options.

#include "core/engine.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace n2j {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testutil::SmallSupplierDb();
    ASSERT_TRUE(AddRandomXY(db_.get(), XYConfig()).ok());
  }
  std::unique_ptr<Database> db_;
};

TEST_F(EngineTest, RunProducesResultAndPlan) {
  QueryEngine engine(db_.get());
  Result<QueryReport> r = engine.Run(
      "select p.pname from p in PART where p.color = \"red\"");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->translated, nullptr);
  EXPECT_NE(r->optimized, nullptr);
  EXPECT_TRUE(r->result.is_set());
  EXPECT_TRUE(r->type->is_set());
}

TEST_F(EngineTest, ParseErrorsPropagate) {
  QueryEngine engine(db_.get());
  Result<QueryReport> r = engine.Run("select select");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST_F(EngineTest, TypeErrorsPropagate) {
  QueryEngine engine(db_.get());
  Result<QueryReport> r = engine.Run("select p.nope from p in PART");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

TEST_F(EngineTest, RewriteOptionsChangeThePlan) {
  RewriteOptions none;
  none.enable_setcmp = false;
  none.enable_quantifier = false;
  none.enable_map_join = false;
  none.enable_unnest_attr = false;
  none.enable_hoist = false;
  none.grouping = GroupingMode::kNone;
  QueryEngine nested(db_.get(), none);
  QueryEngine full(db_.get());
  const char* q =
      "select x from x in X where exists y in Y : y.a = x.a";
  Result<QueryReport> a = nested.Run(q);
  Result<QueryReport> b = full.Run(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->result, b->result);
  EXPECT_FALSE(a->optimized->Equals(*b->optimized));
  // The nested plan does strictly more per-tuple work.
  EXPECT_GT(a->exec_stats.predicate_evals, b->exec_stats.predicate_evals);
}

TEST_F(EngineTest, EvalOptionsControlHashJoins) {
  EvalOptions nl;
  nl.use_hash_joins = false;
  QueryEngine hash_engine(db_.get());
  QueryEngine nl_engine(db_.get(), RewriteOptions(), nl);
  const char* q =
      "select x from x in X where exists y in Y : y.a = x.a";
  Result<QueryReport> h = hash_engine.Run(q);
  Result<QueryReport> n = nl_engine.Run(q);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(h->result, n->result);
  EXPECT_GT(h->exec_stats.hash_inserts, 0u);
  EXPECT_EQ(n->exec_stats.hash_inserts, 0u);
}

TEST_F(EngineTest, RunAdlSkipsTheFrontEnd) {
  QueryEngine engine(db_.get());
  ExprPtr adl = Expr::Agg(AggKind::kCount, Expr::Table("PART"));
  Result<QueryReport> r = engine.RunAdl(adl);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->result, Value::Int(40));
}

TEST_F(EngineTest, TranslateOnlyDoesNotExecute) {
  QueryEngine engine(db_.get());
  Result<QueryReport> r =
      engine.Translate("select p from p in PART where p.price > 5");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->translated, nullptr);
  EXPECT_EQ(r->optimized, nullptr);
  EXPECT_TRUE(r->result.is_null());
}

TEST_F(EngineTest, AggregationQueriesEndToEnd) {
  QueryEngine engine(db_.get());
  Result<QueryReport> r = engine.Run(
      "select (s = s.sname, n = count(s.parts)) from s in SUPPLIER");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->result.set_size(), 12u);
}

TEST_F(EngineTest, SetLiteralsAndArithmetic) {
  QueryEngine engine(db_.get());
  Result<QueryReport> r = engine.Run(
      "select p.pname from p in PART "
      "where p.price % 2 = 0 and p.price / 2 in {1, 2, 3}");
  ASSERT_TRUE(r.ok());
  // Verify against a direct scan.
  size_t expected = 0;
  for (const Value& p : db_->FindTable("PART")->rows()) {
    int64_t price = p.FindField("price")->int_value();
    if (price % 2 == 0 && (price / 2 >= 1 && price / 2 <= 3)) ++expected;
  }
  size_t names = 0;
  std::set<std::string> distinct;
  for (const Value& p : db_->FindTable("PART")->rows()) {
    int64_t price = p.FindField("price")->int_value();
    if (price % 2 == 0 && price / 2 >= 1 && price / 2 <= 3) {
      distinct.insert(p.FindField("pname")->string_value());
    }
  }
  names = distinct.size();
  EXPECT_EQ(r->result.set_size(), names);
}

TEST_F(EngineTest, RuntimeErrorsSurfaceCleanly) {
  QueryEngine engine(db_.get());
  Result<QueryReport> r =
      engine.Run("select p.price / (p.price - p.price) from p in PART");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kRuntimeError);
}

}  // namespace
}  // namespace n2j
