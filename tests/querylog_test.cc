// Flight-recorder coverage (ISSUE 10): JSONL round-trip through the
// strict RFC 8259 reader, ring-buffer wraparound, exact append counts
// under concurrent writers, one-record-per-Run through the engine, and
// the normalized query hash.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "obs/querylog.h"
#include "tests/test_util.h"

namespace n2j {
namespace obs {
namespace {

using testutil::JsonReader;

QueryLogRecord SampleRecord() {
  QueryLogRecord r;
  r.query_hash = 0xdeadbeefcafef00dULL;
  // Every escape class the writer must survive: quote, backslash,
  // newline, a control byte, multi-byte UTF-8.
  r.query = "select s.sname /* \"q\\uote\" \n \x01 caf\xc3\xa9 */";
  r.error = "";
  r.strategy = "cost";
  r.backend = "shredded";
  r.threads = 4;
  r.batch_size = 3;
  r.compiled = false;
  r.vectorized = true;
  r.wall_ms = 12.345678;
  r.rewrite_ms = 1.5;
  r.eval_ms = 10.25;
  r.rows_out = 42;
  r.stats.tuples_scanned = 1000;
  r.stats.hash_probes = 77;
  r.stats.joins_hash = 3;
  r.stats.interp_fallback_evals = 5;
  r.stats.vec_fallbacks = 2;
  r.roots.push_back(RootEstimate{"semijoin [hash keys=1]", 120.0, 100, 1.2});
  r.extents.push_back(ExtentEstimate{"SUPPLIER", 25, 50, 2.0});
  r.max_q = 2.0;
  return r;
}

TEST(QueryLogRecord, JsonRoundTripsThroughStrictReader) {
  QueryLogRecord r = SampleRecord();
  std::string line = r.ToJson();

  // The line must be a valid RFC 8259 document on its own.
  JsonReader reader(line);
  ASSERT_TRUE(reader.ParseDocument()) << line;

  QueryLogRecord back;
  ASSERT_TRUE(QueryLogRecord::FromJson(line, &back)) << line;
  EXPECT_EQ(back.query_hash, r.query_hash);
  EXPECT_EQ(back.query, r.query);
  EXPECT_EQ(back.error, r.error);
  EXPECT_EQ(back.strategy, r.strategy);
  EXPECT_EQ(back.backend, r.backend);
  EXPECT_EQ(back.threads, r.threads);
  EXPECT_EQ(back.batch_size, r.batch_size);
  EXPECT_EQ(back.compiled, r.compiled);
  EXPECT_EQ(back.vectorized, r.vectorized);
  EXPECT_DOUBLE_EQ(back.wall_ms, 12.3457);  // %.6g writer precision
  EXPECT_EQ(back.rows_out, r.rows_out);
  EXPECT_EQ(back.stats.Compact(), r.stats.Compact());
  EXPECT_EQ(back.fallbacks(), r.fallbacks());
  ASSERT_EQ(back.roots.size(), 1u);
  EXPECT_EQ(back.roots[0].op, r.roots[0].op);
  EXPECT_DOUBLE_EQ(back.roots[0].est, 120.0);
  EXPECT_EQ(back.roots[0].actual, 100u);
  ASSERT_EQ(back.extents.size(), 1u);
  EXPECT_EQ(back.extents[0].extent, "SUPPLIER");
  EXPECT_EQ(back.extents[0].est, 25u);
  EXPECT_EQ(back.extents[0].actual, 50u);
  EXPECT_DOUBLE_EQ(back.max_q, 2.0);
}

TEST(QueryLogRecord, FromJsonRejectsMalformedInput) {
  QueryLogRecord out;
  EXPECT_FALSE(QueryLogRecord::FromJson("", &out));
  EXPECT_FALSE(QueryLogRecord::FromJson("{", &out));
  EXPECT_FALSE(QueryLogRecord::FromJson("[]", &out));
  EXPECT_FALSE(QueryLogRecord::FromJson("{\"id\":1} trailing", &out));
  EXPECT_FALSE(QueryLogRecord::FromJson("{\"query\":\"unterminated}", &out));
}

TEST(QueryLog, RingWraparoundKeepsNewestRecords) {
  QueryLog log(8);
  for (int i = 0; i < 20; ++i) {
    QueryLogRecord r;
    r.query = "q" + std::to_string(i);
    log.Append(std::move(r));
  }
  EXPECT_EQ(log.total_appended(), 20u);
  std::vector<QueryLogRecord> snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 8u);
  // Ids 12..19 survive, oldest first.
  for (size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].id, 12 + i);
    EXPECT_EQ(snap[i].query, "q" + std::to_string(12 + i));
  }
  // last_n trims from the old end.
  std::vector<QueryLogRecord> last3 = log.Snapshot(3);
  ASSERT_EQ(last3.size(), 3u);
  EXPECT_EQ(last3[0].id, 17u);
  EXPECT_EQ(last3[2].id, 19u);
}

TEST(QueryLog, ConcurrentWritersAppendExactly) {
  // mt4 exactness: the fetch_add sequence counter makes append counts
  // exact under any interleaving, and every surviving slot holds a
  // complete record (per-slot mutex — no torn writes).
  QueryLog log(64);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        QueryLogRecord r;
        r.query = "w" + std::to_string(t) + "-" + std::to_string(i);
        r.wall_ms = 1.0;
        log.Append(std::move(r));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(log.total_appended(),
            static_cast<uint64_t>(kThreads * kPerThread));
  std::vector<QueryLogRecord> snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 64u);
  // Ids are unique, ascending, and all from the newest window.
  for (size_t i = 0; i < snap.size(); ++i) {
    if (i > 0) {
      EXPECT_LT(snap[i - 1].id, snap[i].id);
    }
    EXPECT_GE(snap[i].id, static_cast<uint64_t>(kThreads * kPerThread - 64));
    EXPECT_FALSE(snap[i].query.empty());
  }
}

TEST(QueryLog, EngineAppendsOneRecordPerRun) {
  std::unique_ptr<Database> db = testutil::SmallSupplierDb();
  QueryEngine engine(db.get());
  QueryLog& qlog = QueryLog::Global();
  uint64_t before = qlog.total_appended();

  ASSERT_TRUE(engine.Run("select s.sname from s in SUPPLIER").ok());
  EXPECT_EQ(qlog.total_appended(), before + 1);

  // Errors are recorded too, with a non-empty error field.
  ASSERT_FALSE(engine.Run("select nonsense !!").ok());
  EXPECT_EQ(qlog.total_appended(), before + 2);
  std::vector<QueryLogRecord> snap = qlog.Snapshot(1);
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_FALSE(snap[0].error.empty());
  EXPECT_EQ(snap[0].query, "select nonsense !!");

  // Disabled appends are dropped entirely.
  qlog.set_enabled(false);
  ASSERT_TRUE(engine.Run("select s.sname from s in SUPPLIER").ok());
  EXPECT_EQ(qlog.total_appended(), before + 2);
  qlog.set_enabled(true);
}

TEST(QueryLog, HashNormalizesOverFormatting) {
  std::unique_ptr<Database> db = testutil::SmallSupplierDb();
  QueryEngine engine(db.get());
  QueryLog& qlog = QueryLog::Global();

  ASSERT_TRUE(
      engine.Run("select s.sname from s in SUPPLIER where s.sname = \"s1\"")
          .ok());
  ASSERT_TRUE(engine
                  .Run("select   s.sname\nfrom s in SUPPLIER\n"
                       "where s.sname = \"s1\"")
                  .ok());
  std::vector<QueryLogRecord> last2 = qlog.Snapshot(2);
  ASSERT_EQ(last2.size(), 2u);
  // Formatting differs, the translated algebra (and so the hash) doesn't.
  EXPECT_NE(last2[0].query, last2[1].query);
  EXPECT_EQ(last2[0].query_hash, last2[1].query_hash);
  EXPECT_NE(last2[0].query_hash, 0u);
}

TEST(QueryLog, JsonlDumpParsesLineByLine) {
  QueryLog log(16);
  for (int i = 0; i < 5; ++i) {
    QueryLogRecord r = SampleRecord();
    r.query += " #" + std::to_string(i);
    log.Append(std::move(r));
  }
  std::string doc = log.ToJsonl();
  size_t lines = 0;
  size_t start = 0;
  while (start < doc.size()) {
    size_t end = doc.find('\n', start);
    ASSERT_NE(end, std::string::npos);  // every record newline-terminated
    std::string line = doc.substr(start, end - start);
    QueryLogRecord back;
    EXPECT_TRUE(QueryLogRecord::FromJson(line, &back)) << line;
    EXPECT_EQ(back.id, lines);
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, 5u);
}

}  // namespace
}  // namespace obs
}  // namespace n2j
