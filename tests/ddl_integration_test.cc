// End-to-end integration through the textual interfaces only: schema
// from the paper's class-definition syntax, objects loaded through the
// Database API, queries through the engine — no hand-built algebra
// anywhere. This is the downstream-user path.

#include <gtest/gtest.h>

#include "adl/analysis.h"
#include "core/engine.h"
#include "oosql/parser.h"
#include "tests/test_util.h"

namespace n2j {
namespace {

class DdlIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<Schema> schema = Parser::ParseSchemaString(R"(
      class Employee with extension EMPLOYEE oid eid
        attributes name : string,
                   salary : int,
                   dept : Department,
                   skills : { (skill : string) }
      end Employee
      class Department with extension DEPARTMENT oid did
        attributes dname : string, budget : int
      end Department
      class Project with extension PROJECT oid prid
        attributes title : string,
                   members : { (who : Employee) }
      end Project
    )");
    ASSERT_TRUE(schema.ok()) << schema.status().ToString();
    db_ = std::make_unique<Database>(std::move(*schema));

    auto dept = [&](const char* name, int64_t budget) {
      Result<Oid> oid = db_->NewObject(
          "Department",
          Value::Tuple({Field("dname", Value::String(name)),
                        Field("budget", Value::Int(budget))}));
      N2J_CHECK(oid.ok());
      return *oid;
    };
    Oid eng = dept("engineering", 1000);
    Oid sales = dept("sales", 500);

    auto employee = [&](const char* name, int64_t salary, Oid d,
                        std::vector<const char*> skills) {
      std::vector<Value> skill_set;
      for (const char* s : skills) {
        skill_set.push_back(
            Value::Tuple({Field("skill", Value::String(s))}));
      }
      Result<Oid> oid = db_->NewObject(
          "Employee",
          Value::Tuple({Field("name", Value::String(name)),
                        Field("salary", Value::Int(salary)),
                        Field("dept", Value::MakeOidValue(d)),
                        Field("skills", Value::Set(skill_set))}));
      N2J_CHECK(oid.ok());
      return *oid;
    };
    Oid ada = employee("ada", 120, eng, {"cpp", "algebra"});
    Oid bob = employee("bob", 90, eng, {"cpp"});
    Oid cyd = employee("cyd", 80, sales, {"talking"});
    employee("dan", 70, sales, {});

    auto project = [&](const char* title, std::vector<Oid> members) {
      std::vector<Value> m;
      for (Oid who : members) {
        m.push_back(Value::Tuple({Field("who", Value::MakeOidValue(who))}));
      }
      N2J_CHECK(db_->NewObject(
                      "Project",
                      Value::Tuple({Field("title", Value::String(title)),
                                    Field("members", Value::Set(m))}))
                    .ok());
    };
    project("optimizer", {ada, bob});
    project("brochure", {cyd});
    project("skunkworks", {});

    engine_ = std::make_unique<QueryEngine>(db_.get());
  }

  Value Run(const std::string& q) {
    Result<QueryReport> r = engine_->Run(q);
    EXPECT_TRUE(r.ok()) << q << "\n" << r.status().ToString();
    if (!r.ok()) return Value::Null();
    last_plan_ = r->optimized;
    return r->result;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<QueryEngine> engine_;
  ExprPtr last_plan_;
};

TEST_F(DdlIntegrationTest, PathExpressionsThroughReferences) {
  Value v = Run(
      "select e.name from e in EMPLOYEE "
      "where e.dept.dname = \"engineering\"");
  EXPECT_EQ(v, Value::Set({Value::String("ada"), Value::String("bob")}));
}

TEST_F(DdlIntegrationTest, NestedQuantifiersOverRefSets) {
  // Employees on some project with a budget-1000 department member —
  // triple-nested, crossing two reference hops.
  Value v = Run(
      "select e.name from e in EMPLOYEE where "
      "exists p in PROJECT : "
      "exists m in p.members : m.who = e.eid and "
      "e.dept.budget >= 1000");
  EXPECT_EQ(v, Value::Set({Value::String("ada"), Value::String("bob")}));
}

TEST_F(DdlIntegrationTest, GroupingQueryKeepsEmptyProjects) {
  Value v = Run(
      "select (title = p.title, headcount = count(p.members)) "
      "from p in PROJECT");
  ASSERT_EQ(v.set_size(), 3u);
  bool skunkworks_seen = false;
  for (const Value& t : v.elements()) {
    if (t.FindField("title")->string_value() == "skunkworks") {
      EXPECT_EQ(t.FindField("headcount")->int_value(), 0);
      skunkworks_seen = true;
    }
  }
  EXPECT_TRUE(skunkworks_seen);
}

TEST_F(DdlIntegrationTest, CorrelatedSubqueryBecomesSetOriented) {
  Value v = Run(
      "select (dname = d.dname, staff = "
      "  select e.name from e in EMPLOYEE where e.dept = d.did) "
      "from d in DEPARTMENT");
  ASSERT_EQ(v.set_size(), 2u);
  bool nestjoin = false;
  VisitPreOrder(last_plan_, [&](const ExprPtr& n) {
    if (n->kind() == ExprKind::kNestJoin) nestjoin = true;
  });
  EXPECT_TRUE(nestjoin) << AlgebraStr(last_plan_);
  for (const Value& t : v.elements()) {
    if (t.FindField("dname")->string_value() == "engineering") {
      EXPECT_EQ(t.FindField("staff")->set_size(), 2u);
    }
  }
}

TEST_F(DdlIntegrationTest, UniversalQuantificationOverSkills) {
  // Departments where every employee knows cpp.
  Value v = Run(
      "select d.dname from d in DEPARTMENT where "
      "forall e in EMPLOYEE : not (e.dept = d.did) or "
      "(exists s in e.skills : s.skill = \"cpp\")");
  EXPECT_EQ(v, Value::Set({Value::String("engineering")}));
}

TEST_F(DdlIntegrationTest, WithConstructOverRefs) {
  Value v = Run(
      "select (name = e.name, n = count(Mine)) from e in EMPLOYEE "
      "where e.salary >= 90 "
      "with Mine = select p from p in PROJECT "
      "where exists m in p.members : m.who = e.eid");
  ASSERT_EQ(v.set_size(), 2u);  // ada and bob
  for (const Value& t : v.elements()) {
    EXPECT_EQ(t.FindField("n")->int_value(), 1);
  }
}

TEST_F(DdlIntegrationTest, SchemaRoundTripsThroughToString) {
  // The schema's printed form parses back into an equivalent schema.
  std::string text = db_->schema().ToString();
  Result<Schema> again = Parser::ParseSchemaString(text);
  ASSERT_TRUE(again.ok()) << text << "\n" << again.status().ToString();
  EXPECT_EQ(again->classes().size(), db_->schema().classes().size());
  for (const ClassDef& c : db_->schema().classes()) {
    const ClassDef* rt = again->FindClass(c.name);
    ASSERT_NE(rt, nullptr) << c.name;
    EXPECT_EQ(rt->extent, c.extent);
    EXPECT_TRUE(rt->ObjectType()->Equals(*c.ObjectType())) << c.name;
  }
}

}  // namespace
}  // namespace n2j
