// Chrome trace escaping regression (ISSUE 7 satellite): operator span
// names carry free-form detail — predicate text with string literals,
// extent names, annotations — so ChromeTraceJson must escape per RFC
// 8259 or one hostile name invalidates the whole document. Pinned by a
// round trip: render a trace whose span detail holds every escape
// class, parse the document with the strict JSON reader
// (tests/test_util.h), and require the decoded name to reproduce the
// original bytes exactly.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/str_util.h"
#include "core/engine.h"
#include "obs/chrome_trace.h"
#include "obs/trace.h"
#include "storage/database.h"
#include "storage/datagen.h"
#include "tests/test_util.h"

namespace n2j {
namespace {

using testutil::JsonReader;

// Every escape class in one name: quote, backslash, the five short
// escapes, a sub-0x20 control byte, a DEL byte, and multi-byte UTF-8.
const char kHostile[] =
    "sel [p.name = \"a\\b\" \b\f\n\r\t \x01\x1f \x7f \xc3\xa9]";

TEST(ChromeTrace, HostileSpanNameRoundTrips) {
  TraceCollector tc;
  EvalStats zero;
  {
    OpSpan root(&tc, zero, "query");
    {
      OpSpan child(&tc, zero, "select");
      child.Annotate(kHostile);
      child.RowsOut(uint64_t{3});
    }
  }
  std::string json = ChromeTraceJson(tc);

  JsonReader reader(json);
  ASSERT_TRUE(reader.ParseDocument()) << json;

  // The decoded span name must reproduce the hostile bytes exactly.
  std::string want = std::string("select [") + kHostile + "]";
  bool found = false;
  for (const std::string& s : reader.strings()) {
    if (s == want) found = true;
  }
  EXPECT_TRUE(found) << "decoded strings lost the hostile name:\n" << json;
}

TEST(ChromeTrace, TracedJoinQueryStaysValidJson) {
  // End to end: a real traced query whose plan carries join-key details
  // and per-span stats strings through the escaper; the whole document
  // must parse strictly.
  SupplierPartConfig config;
  config.num_parts = 40;
  config.num_suppliers = 10;
  std::unique_ptr<Database> db = MakeSupplierPartDatabase(config);
  TraceCollector tc;
  EvalOptions eopts;
  eopts.trace = &tc;
  QueryEngine engine(db.get(), RewriteOptions(), eopts);
  Result<QueryReport> r = engine.Run(
      "select (a = x.pname, b = y.pname) from x in PART, y in PART "
      "where x.price = y.price");
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  std::string json = ChromeTraceJson(tc);
  JsonReader reader(json);
  ASSERT_TRUE(reader.ParseDocument()) << json;

  // Span details made it into the document (the name carries the
  // "op [detail]" form the profile renderer uses).
  bool saw_detail = false;
  for (const std::string& s : reader.strings()) {
    if (s.find(" [") != std::string::npos) saw_detail = true;
  }
  EXPECT_TRUE(saw_detail) << json;
}

TEST(ChromeTrace, JsonEscapeHelperMatchesRfc8259) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("\b\f\n\r\t"), "\\b\\f\\n\\r\\t");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
  EXPECT_EQ(JsonEscape(std::string("\x1f", 1)), "\\u001f");
  // DEL and UTF-8 continuation bytes pass through untouched (valid in
  // JSON strings); a signed-char formatter would mangle them.
  EXPECT_EQ(JsonEscape("\x7f"), "\x7f");
  EXPECT_EQ(JsonEscape("\xc3\xa9"), "\xc3\xa9");
}

}  // namespace
}  // namespace n2j
