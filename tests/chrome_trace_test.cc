// Chrome trace escaping regression (ISSUE 7 satellite): operator span
// names carry free-form detail — predicate text with string literals,
// extent names, annotations — so ChromeTraceJson must escape per RFC
// 8259 or one hostile name invalidates the whole document. Pinned by a
// round trip: render a trace whose span detail holds every escape
// class, parse the document with a strict JSON reader, and require the
// decoded name to reproduce the original bytes exactly.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/str_util.h"
#include "core/engine.h"
#include "obs/chrome_trace.h"
#include "obs/trace.h"
#include "storage/database.h"
#include "storage/datagen.h"

namespace n2j {
namespace {

/// Minimal strict RFC 8259 reader: validates the full document and
/// collects every decoded string value/key. No dependency, no leniency
/// (a lenient parser would defeat the point of the test).
class JsonReader {
 public:
  explicit JsonReader(const std::string& s) : s_(s) {}

  bool ParseDocument() {
    SkipWs();
    if (!ParseValue()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

  const std::vector<std::string>& strings() const { return strings_; }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Literal(const char* lit) {
    size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool ParseValue() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return ParseString();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return ParseNumber();
    }
  }
  bool ParseObject() {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != '"' || !ParseString()) {
        return false;
      }
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_++] != ':') return false;
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool ParseArray() {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < s_.size()) {
      unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        strings_.push_back(out);
        return true;
      }
      if (c < 0x20) return false;  // raw control char: invalid JSON
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            unsigned int cp = 0;
            for (int i = 0; i < 4; ++i) {
              char h = s_[pos_++];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp += 10u + static_cast<unsigned>(h - 'a');
              else if (h >= 'A' && h <= 'F') cp += 10u + static_cast<unsigned>(h - 'A');
              else return false;
            }
            // The writer only emits \u00xx for control bytes.
            if (cp > 0xFF) return false;
            out += static_cast<char>(cp);
            break;
          }
          default: return false;
        }
        continue;
      }
      out += static_cast<char>(c);
      ++pos_;
    }
    return false;  // unterminated
  }
  bool ParseNumber() {
    size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
            s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  const std::string& s_;
  size_t pos_ = 0;
  std::vector<std::string> strings_;
};

// Every escape class in one name: quote, backslash, the five short
// escapes, a sub-0x20 control byte, a DEL byte, and multi-byte UTF-8.
const char kHostile[] =
    "sel [p.name = \"a\\b\" \b\f\n\r\t \x01\x1f \x7f \xc3\xa9]";

TEST(ChromeTrace, HostileSpanNameRoundTrips) {
  TraceCollector tc;
  EvalStats zero;
  {
    OpSpan root(&tc, zero, "query");
    {
      OpSpan child(&tc, zero, "select");
      child.Annotate(kHostile);
      child.RowsOut(uint64_t{3});
    }
  }
  std::string json = ChromeTraceJson(tc);

  JsonReader reader(json);
  ASSERT_TRUE(reader.ParseDocument()) << json;

  // The decoded span name must reproduce the hostile bytes exactly.
  std::string want = std::string("select [") + kHostile + "]";
  bool found = false;
  for (const std::string& s : reader.strings()) {
    if (s == want) found = true;
  }
  EXPECT_TRUE(found) << "decoded strings lost the hostile name:\n" << json;
}

TEST(ChromeTrace, TracedJoinQueryStaysValidJson) {
  // End to end: a real traced query whose plan carries join-key details
  // and per-span stats strings through the escaper; the whole document
  // must parse strictly.
  SupplierPartConfig config;
  config.num_parts = 40;
  config.num_suppliers = 10;
  std::unique_ptr<Database> db = MakeSupplierPartDatabase(config);
  TraceCollector tc;
  EvalOptions eopts;
  eopts.trace = &tc;
  QueryEngine engine(db.get(), RewriteOptions(), eopts);
  Result<QueryReport> r = engine.Run(
      "select (a = x.pname, b = y.pname) from x in PART, y in PART "
      "where x.price = y.price");
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  std::string json = ChromeTraceJson(tc);
  JsonReader reader(json);
  ASSERT_TRUE(reader.ParseDocument()) << json;

  // Span details made it into the document (the name carries the
  // "op [detail]" form the profile renderer uses).
  bool saw_detail = false;
  for (const std::string& s : reader.strings()) {
    if (s.find(" [") != std::string::npos) saw_detail = true;
  }
  EXPECT_TRUE(saw_detail) << json;
}

TEST(ChromeTrace, JsonEscapeHelperMatchesRfc8259) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("\b\f\n\r\t"), "\\b\\f\\n\\r\\t");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
  EXPECT_EQ(JsonEscape(std::string("\x1f", 1)), "\\u001f");
  // DEL and UTF-8 continuation bytes pass through untouched (valid in
  // JSON strings); a signed-char formatter would mangle them.
  EXPECT_EQ(JsonEscape("\x7f"), "\x7f");
  EXPECT_EQ(JsonEscape("\xc3\xa9"), "\xc3\xa9");
}

}  // namespace
}  // namespace n2j
