// The division operator [Codd72] — the paper (Section 5.2.1): "universal
// quantification is handled by means of the division operator". This
// test shows three equivalent plans for the classical universal query
// "suppliers supplying all red parts" and checks them against each
// other:
//   1. the OOSQL ∀-form run through the engine (→ antijoin plan),
//   2. the hand-built relational division plan over the unnested pairs,
//   3. naive nested loops (ground truth).

#include <gtest/gtest.h>

#include "adl/analysis.h"
#include "tests/test_util.h"

namespace n2j {
namespace {

using testutil::EvalExpr;
using testutil::RewriteExpr;
using testutil::TranslateOrDie;

class DivisionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SupplierPartConfig config;
    config.seed = 61;
    config.num_parts = 40;
    config.num_suppliers = 25;
    config.parts_per_supplier = 12;
    config.red_fraction = 0.08;  // few red parts → nonempty answer likely
    config.match_fraction = 1.0;
    db_ = MakeSupplierPartDatabase(config);
  }
  std::unique_ptr<Database> db_;
};

TEST_F(DivisionTest, DivisionPlanAgreesWithAntijoinPlan) {
  // 1. The ∀-form: suppliers s such that every red part is in s.parts.
  ExprPtr query = TranslateOrDie(
      *db_,
      "select s.eid from s in SUPPLIER where "
      "forall p in PART : not (p.color = \"red\") or p[pid] in s.parts");
  Value truth = EvalExpr(*db_, query);  // nested-loop ground truth

  RewriteResult rewritten = RewriteExpr(*db_, query);
  EXPECT_TRUE(rewritten.Fired("Rule1-AntiJoin")) << rewritten.TraceToString();
  EXPECT_EQ(EvalExpr(*db_, rewritten.expr), truth);

  // 2. The division plan:
  //      pairs = π_{eid,pid}(µ_parts(SUPPLIER))
  //      red   = π_{pid}(σ[color="red"](PART))
  //      eids  = pairs ÷ red
  //    Division keeps exactly the eids paired with *all* red pids.
  ExprPtr pairs =
      Expr::Project(Expr::Unnest(Expr::Table("SUPPLIER"), "parts"),
                    {"eid", "pid"});
  ExprPtr red = Expr::Project(
      Expr::Select("p",
                   Expr::Eq(Expr::Access(Expr::Var("p"), "color"),
                            Expr::Const(Value::String("red"))),
                   Expr::Table("PART")),
      {"pid"});
  ExprPtr division =
      Expr::Map("t", Expr::Access(Expr::Var("t"), "eid"),
                Expr::Divide(pairs, red));
  Value divided = EvalExpr(*db_, division);

  // Caveat of the division plan (why the paper's antijoin route is more
  // general): µ drops suppliers with empty part sets. If there are no
  // red parts at all, those suppliers trivially qualify in the ∀-form
  // but are absent from the division result. Our generator gives every
  // supplier a nonempty part set, so the plans agree exactly.
  EXPECT_EQ(divided, truth);
}

TEST_F(DivisionTest, DivisionBySupersetIsEmpty) {
  // No supplier supplies parts outside the catalogue plus a phantom,
  // so dividing by a strictly larger divisor yields ∅.
  ExprPtr pairs =
      Expr::Project(Expr::Unnest(Expr::Table("SUPPLIER"), "parts"),
                    {"eid", "pid"});
  std::vector<Value> phantom = {Value::Tuple(
      {Field("pid", Value::MakeOidValue(MakeOid(1, 999999)))})};
  // divisor = all pids ∪ {phantom}
  ExprPtr all_pids = Expr::Project(Expr::Table("PART"), {"pid"});
  ExprPtr divisor =
      Expr::Union(all_pids, Expr::Const(Value::Set(phantom)));
  Value v = EvalExpr(*db_, Expr::Divide(pairs, divisor));
  EXPECT_EQ(v.set_size(), 0u);
}

TEST_F(DivisionTest, DivisionByEmptySetKeepsEverything) {
  // Classical semantics: every dividend tuple trivially satisfies ∀ over
  // an empty divisor. (The runtime returns the dividend unchanged since
  // the divisor schema is unknowable from an empty set.)
  ExprPtr pairs =
      Expr::Project(Expr::Unnest(Expr::Table("SUPPLIER"), "parts"),
                    {"eid", "pid"});
  Value v =
      EvalExpr(*db_, Expr::Divide(pairs, Expr::Const(Value::EmptySet())));
  EXPECT_EQ(v, EvalExpr(*db_, pairs));
}

TEST_F(DivisionTest, DivisionMatchesQuantifierSemanticsOnRandomData) {
  // Property: on the X/Y tables, Y ÷ {(e=k)} == π_a(σ[... ∀-ish ...]).
  auto db = std::make_unique<Database>();
  XYConfig config;
  config.seed = 67;
  ASSERT_TRUE(AddRandomXY(db.get(), config).ok());
  for (int64_t k1 = 0; k1 < 3; ++k1) {
    ExprPtr divisor = Expr::Const(Value::Set(
        {Value::Tuple({Field("e", Value::Int(k1))}),
         Value::Tuple({Field("e", Value::Int(k1 + 1))})}));
    Value via_division =
        EvalExpr(*db, Expr::Divide(Expr::Table("Y"), divisor));
    // a-values where both (a,k1) and (a,k1+1) are in Y.
    ExprPtr via_quant = Expr::Project(
        Expr::Select(
            "y",
            Expr::Quant(
                QuantKind::kForall, "d", divisor,
                Expr::Quant(
                    QuantKind::kExists, "y2", Expr::Table("Y"),
                    Expr::And(Expr::Eq(Expr::Access(Expr::Var("y2"), "a"),
                                       Expr::Access(Expr::Var("y"), "a")),
                              Expr::Eq(Expr::Access(Expr::Var("y2"), "e"),
                                       Expr::Access(Expr::Var("d"), "e"))))),
            Expr::Table("Y")),
        {"a"});
    EXPECT_EQ(via_division, EvalExpr(*db, via_quant)) << "k=" << k1;
  }
}

}  // namespace
}  // namespace n2j
