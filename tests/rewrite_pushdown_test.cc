// Selection pushdown through the join family.

#include <gtest/gtest.h>

#include "adl/analysis.h"
#include "tests/test_util.h"

namespace n2j {
namespace {

using testutil::CheckEquivalence;
using testutil::TranslateOrDie;

class PushdownTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    XYConfig config;
    config.seed = 83;
    config.x_rows = 30;
    config.y_rows = 30;
    ASSERT_TRUE(AddRandomXY(db_.get(), config).ok());
  }
  std::unique_ptr<Database> db_;
};

/// True if somewhere a Select sits directly on the given table.
bool SelectsDirectlyOn(const ExprPtr& e, const std::string& table) {
  bool found = false;
  VisitPreOrder(e, [&](const ExprPtr& n) {
    if (n->kind() == ExprKind::kSelect &&
        n->child(0)->kind() == ExprKind::kGetTable &&
        n->child(0)->name() == table) {
      found = true;
    }
  });
  return found;
}

TEST_F(PushdownTest, LeftOnlyConjunctMovesBelowSemiJoin) {
  // x.a > 1 applies to X alone; the quantifier becomes the semijoin and
  // the scalar conjunct pushes below it.
  ExprPtr e = TranslateOrDie(
      *db_,
      "select x from x in X where x.a > 1 and "
      "(exists y in Y : y.a = x.a)");
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("PushSelectionIntoJoin(left)")) << r.TraceToString();
  EXPECT_TRUE(SelectsDirectlyOn(r.expr, "X")) << AlgebraStr(r.expr);
  // The top of the plan is the semijoin itself, no residual selection.
  EXPECT_EQ(r.expr->kind(), ExprKind::kSemiJoin);
}

TEST_F(PushdownTest, BothSidesOfARegularJoin) {
  // Hand-built: σ[z : z.xa > 0 ∧ z.e > 1](X' ⋈ Y) with X' = α[(xa=a)](X).
  ExprPtr renamed = Expr::Map(
      "x0", Expr::TupleConstruct({"xa"},
                                 {Expr::Access(Expr::Var("x0"), "a")}),
      Expr::Table("X"));
  ExprPtr join = Expr::Join(renamed, Expr::Table("Y"), "x", "y",
                            Expr::Eq(Expr::Access(Expr::Var("x"), "xa"),
                                     Expr::Access(Expr::Var("y"), "a")));
  ExprPtr e = Expr::Select(
      "z",
      Expr::And(Expr::Bin(BinOp::kGt, Expr::Access(Expr::Var("z"), "xa"),
                          Expr::Const(Value::Int(0))),
                Expr::Bin(BinOp::kGt, Expr::Access(Expr::Var("z"), "e"),
                          Expr::Const(Value::Int(1)))),
      join);
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("PushSelectionIntoJoin(left)")) << r.TraceToString();
  EXPECT_TRUE(r.Fired("PushSelectionIntoJoin(right)")) << r.TraceToString();
  // No residual selection remains above the join.
  EXPECT_EQ(r.expr->kind(), ExprKind::kJoin) << AlgebraStr(r.expr);
  EXPECT_TRUE(SelectsDirectlyOn(r.expr, "Y")) << AlgebraStr(r.expr);
}

TEST_F(PushdownTest, MultiRangePairingQueryUsesNestJoinAndStillPushes) {
  // The surface form of the same query: the general select-clause body
  // routes through the nestjoin; the x-only conjunct still pushes below
  // it in a later round.
  ExprPtr e = TranslateOrDie(
      *db_,
      "select (xa = x.a, ye = y.e) from x in X, y in Y "
      "where x.a = y.a and x.a > 0 and y.e > 1");
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("NestJoinRewrite")) << r.TraceToString();
}

TEST_F(PushdownTest, GroupAttributeConjunctStaysAboveNestJoin) {
  // count(Yp) > 0 needs the nestjoin's group attribute: it must stay
  // above; the x-only conjunct pushes below.
  ExprPtr e = TranslateOrDie(
      *db_,
      "select x from x in X where x.a >= 0 and count(Yp) >= 1 "
      "with Yp = select y from y in Y where y.a = x.a");
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("NestJoinRewrite")) << r.TraceToString();
  EXPECT_TRUE(r.Fired("PushSelectionIntoJoin(left)")) << r.TraceToString();
  // There is still a selection above the nestjoin (for the count).
  bool select_above_nestjoin = false;
  VisitPreOrder(r.expr, [&](const ExprPtr& n) {
    if (n->kind() == ExprKind::kSelect &&
        n->child(0)->kind() == ExprKind::kNestJoin) {
      select_above_nestjoin = true;
    }
  });
  EXPECT_TRUE(select_above_nestjoin) << AlgebraStr(r.expr);
}

TEST_F(PushdownTest, WholeTupleUseBlocksPushdown) {
  // x ∈ {…} uses the tuple wholesale: not pushable through the semijoin
  // output, must stay residual. (Still correct.)
  ExprPtr in_pred = Expr::Bin(
      BinOp::kIn, Expr::Var("z"),
      Expr::Const(Value::Set({Value::Tuple(
          {Field("a", Value::Int(1)), Field("c", Value::EmptySet())})})));
  ExprPtr semijoin = Expr::SemiJoin(
      Expr::Table("X"), Expr::Table("Y"), "x", "y",
      Expr::Eq(Expr::Access(Expr::Var("x"), "a"),
               Expr::Access(Expr::Var("y"), "a")));
  ExprPtr e = Expr::Select("z", in_pred, semijoin);
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_FALSE(r.Fired("PushSelectionIntoJoin(left)")) << r.TraceToString();
}

TEST_F(PushdownTest, DisabledByOption) {
  RewriteOptions opts;
  opts.enable_pushdown = false;
  ExprPtr e = TranslateOrDie(
      *db_,
      "select x from x in X where x.a > 1 and "
      "(exists y in Y : y.a = x.a)");
  RewriteResult r = CheckEquivalence(*db_, e, opts);
  EXPECT_FALSE(r.Fired("PushSelectionIntoJoin(left)"));
}

TEST_F(PushdownTest, AntiJoinPushdownIsEquivalent) {
  ExprPtr e = TranslateOrDie(
      *db_,
      "select x from x in X where x.a <> 3 and "
      "not exists y in Y : y.a = x.a");
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("PushSelectionIntoJoin(left)")) << r.TraceToString();
  EXPECT_EQ(r.expr->kind(), ExprKind::kAntiJoin);
}

TEST_F(PushdownTest, JoinPredicateOneSidedConjunctsPush) {
  // p.price-style conjuncts inside the join predicate move into the
  // operands (right side for all join kinds; left side only for ⋈/⋉).
  ExprPtr e = TranslateOrDie(
      *db_,
      "select x from x in X where exists y in Y : "
      "y.a = x.a and y.e > 1 and x.a < 5");
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("PushJoinPredicate(right)") ||
              r.Fired("PushSelectionIntoJoin(right)"))
      << r.TraceToString();
  EXPECT_TRUE(SelectsDirectlyOn(r.expr, "Y")) << AlgebraStr(r.expr);
}

TEST_F(PushdownTest, AntiJoinNeverPushesLeftConjunctsFromPredicate) {
  // X ▷_{q(x) ∧ p} Y keeps x when q(x) is false; pushing q into X would
  // drop it. The rewriter must not do that — and the query must agree
  // with nested loops (which CheckEquivalence asserts).
  ExprPtr pred = Expr::And(
      Expr::Bin(BinOp::kGt, Expr::Access(Expr::Var("x"), "a"),
                Expr::Const(Value::Int(2))),
      Expr::Eq(Expr::Access(Expr::Var("x"), "a"),
               Expr::Access(Expr::Var("y"), "a")));
  ExprPtr e =
      Expr::AntiJoin(Expr::Table("X"), Expr::Table("Y"), "x", "y", pred);
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_FALSE(r.Fired("PushJoinPredicate(left)")) << r.TraceToString();
  EXPECT_FALSE(SelectsDirectlyOn(r.expr, "X")) << AlgebraStr(r.expr);
}

TEST_F(PushdownTest, NestJoinPushesRightButNotLeft) {
  ExprPtr pred = Expr::AndAll(
      {Expr::Eq(Expr::Access(Expr::Var("x"), "a"),
                Expr::Access(Expr::Var("y"), "a")),
       Expr::Bin(BinOp::kGt, Expr::Access(Expr::Var("y"), "e"),
                 Expr::Const(Value::Int(1))),
       Expr::Bin(BinOp::kGt, Expr::Access(Expr::Var("x"), "a"),
                 Expr::Const(Value::Int(0)))});
  ExprPtr e = Expr::NestJoin(Expr::Table("X"), Expr::Table("Y"), "x", "y",
                             pred, "ys");
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("PushJoinPredicate(right)")) << r.TraceToString();
  EXPECT_FALSE(r.Fired("PushJoinPredicate(left)")) << r.TraceToString();
  EXPECT_TRUE(SelectsDirectlyOn(r.expr, "Y")) << AlgebraStr(r.expr);
  EXPECT_FALSE(SelectsDirectlyOn(r.expr, "X")) << AlgebraStr(r.expr);
}

}  // namespace
}  // namespace n2j
