// Metrics registry semantics (ISSUE 10 satellites): the nanosecond sum
// accumulator (sub-microsecond observations must not truncate to zero),
// Reset-then-Observe exact deltas for sequential callers, and the
// deterministic merged render order `\metrics` depends on.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace n2j {
namespace obs {
namespace {

TEST(Histogram, SubMicrosecondObservationsAccumulate) {
  // 1000 × 0.5µs. A double-milliseconds accumulator kept at histogram
  // granularity survives, but the old integer-ms sum truncated each to
  // zero; the nanosecond accumulator keeps every one.
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Observe(0.0005);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.sum_ms(), 0.5, 1e-6);
  // All land in the first bucket (le 0.01ms).
  EXPECT_EQ(h.bucket(0), 1000u);
}

TEST(Histogram, SumSurvivesMixedMagnitudes) {
  Histogram h;
  h.Observe(0.0001);   // 100ns
  h.Observe(1500.0);   // 1.5s — beyond the last bound
  EXPECT_EQ(h.count(), 2u);
  EXPECT_NEAR(h.sum_ms(), 1500.0001, 1e-4);
  // The overflow observation counts only toward the implicit +Inf
  // bucket (the last one).
  EXPECT_EQ(h.bucket(Histogram::kNumBuckets - 1), 1u);
}

TEST(Histogram, ResetZeroesCountSumAndBuckets) {
  Histogram h;
  h.Observe(0.3);
  h.Observe(42.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum_ms(), 0.0);
  for (int i = 0; i < Histogram::kNumBuckets; ++i) EXPECT_EQ(h.bucket(i), 0u);
  // Post-Reset observations read as exact deltas (the semantics the
  // header documents for sequential callers).
  h.Observe(0.3);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_NEAR(h.sum_ms(), 0.3, 1e-9);
}

TEST(MetricsRegistry, ResetThenAddReadsExactDeltas) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("n2j_test_total");
  c.Add(17);
  reg.Reset();
  EXPECT_EQ(c.value(), 0u);
  c.Add(3);
  EXPECT_EQ(c.value(), 3u);
  // Instruments stay registered across Reset — the cached reference and
  // a fresh lookup are the same object.
  EXPECT_EQ(&c, &reg.GetCounter("n2j_test_total"));
}

TEST(MetricsRegistry, RenderMergesCountersAndHistogramsByName) {
  MetricsRegistry reg;
  reg.GetCounter("n2j_c_total").Add(1);
  reg.GetHistogram("n2j_b_ms").Observe(1.0);
  reg.GetCounter("n2j_a_total").Add(2);
  reg.GetHistogram("n2j_d_ms").Observe(2.0);
  std::string out = reg.Render();
  size_t a = out.find("n2j_a_total");
  size_t b = out.find("n2j_b_ms");
  size_t c = out.find("n2j_c_total");
  size_t d = out.find("n2j_d_ms");
  ASSERT_NE(a, std::string::npos) << out;
  ASSERT_NE(b, std::string::npos) << out;
  ASSERT_NE(c, std::string::npos) << out;
  ASSERT_NE(d, std::string::npos) << out;
  // One merged lexicographic order, counters and histograms interleaved
  // — not "all counters then all histograms".
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(c, d);
  // Deterministic: same registry, same document.
  EXPECT_EQ(out, reg.Render());
}

TEST(MetricsRegistry, ValueAccessorsAreNameSorted) {
  MetricsRegistry reg;
  reg.GetCounter("zzz").Add(9);
  reg.GetCounter("aaa").Add(1);
  reg.GetHistogram("mmm").Observe(0.5);
  std::vector<std::pair<std::string, uint64_t>> counters =
      reg.CounterValues();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "aaa");
  EXPECT_EQ(counters[0].second, 1u);
  EXPECT_EQ(counters[1].first, "zzz");
  std::vector<HistogramSnapshot> hists = reg.HistogramValues();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].name, "mmm");
  EXPECT_EQ(hists[0].count, 1u);
  EXPECT_NEAR(hists[0].sum_ms, 0.5, 1e-9);
}

}  // namespace
}  // namespace obs
}  // namespace n2j
