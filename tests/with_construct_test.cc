// The paper's `with` construct — local definitions in the general query
// format of Section 5.1:
//
//   select F(x) from x in X where P(x, Y')
//     with Y' = select G(x,y) from y in Y where Q(x,y)

#include <gtest/gtest.h>

#include "oosql/parser.h"
#include "tests/test_util.h"

namespace n2j {
namespace {

using testutil::CheckEquivalence;
using testutil::EvalExpr;
using testutil::TranslateOrDie;

class WithConstructTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    ASSERT_TRUE(AddRandomXY(db_.get(), XYConfig()).ok());
  }
  std::unique_ptr<Database> db_;
};

TEST_F(WithConstructTest, ExpandsIntoTheWhereClause) {
  // The paper's general two-block format, verbatim modulo ASCII.
  ExprPtr with_form = TranslateOrDie(
      *db_,
      "select x from x in X where x.c subseteq Yp "
      "with Yp = select (d = y.e) from y in Y where y.a = x.a");
  ExprPtr inline_form = TranslateOrDie(
      *db_,
      "select x from x in X where x.c subseteq "
      "(select (d = y.e) from y in Y where y.a = x.a)");
  EXPECT_TRUE(with_form->Equals(*inline_form));
}

TEST_F(WithConstructTest, DefinitionsMayUseRangeVariables) {
  // Correlated definition: runs end to end and optimizes like the
  // inline form (nestjoin).
  ExprPtr e = TranslateOrDie(
      *db_,
      "select (a = x.a, n = count(Yp)) from x in X "
      "with Yp = select y from y in Y where y.a = x.a");
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("NestJoinRewrite")) << r.TraceToString();
}

TEST_F(WithConstructTest, LaterDefinitionsSeeEarlierOnes) {
  ExprPtr e = TranslateOrDie(
      *db_,
      "select x.a from x in X where x.a in Big "
      "with Small = select y.a from y in Y where y.e > 2, "
      "     Big = Small union (select y.a from y in Y where y.e <= 2)");
  // Equivalent to membership in all of Y's a-values.
  ExprPtr direct = TranslateOrDie(
      *db_, "select x.a from x in X where x.a in "
            "(select y.a from y in Y)");
  EXPECT_EQ(EvalExpr(*db_, e), EvalExpr(*db_, direct));
}

TEST_F(WithConstructTest, RangeVariablesShadowDefinitions) {
  // A from-variable named like the definition wins inside its block.
  ExprPtr e = TranslateOrDie(
      *db_,
      "select (outer = count(Yp), inner = "
      "  select Yp.e from Yp in Y where Yp.a = x.a) "
      "from x in X with Yp = select y from y in Y where y.a = x.a");
  Value v = EvalExpr(*db_, e);
  EXPECT_TRUE(v.is_set());
}

TEST_F(WithConstructTest, QuantifierVariablesShadowToo) {
  ExprPtr e = TranslateOrDie(
      *db_,
      "select x from x in X where exists Q in x.c : Q.d >= 0 "
      "with Q = select y from y in Y");
  // Q inside the quantifier refers to the bound element, not the def.
  Value v = EvalExpr(*db_, e);
  EXPECT_TRUE(v.is_set());
}

TEST_F(WithConstructTest, UndefinedNameStillErrors) {
  Translator tr(db_->schema(), db_.get());
  Result<TypedExpr> r = tr.TranslateString(
      "select x from x in X where x.a in Nope "
      "with Other = select y.a from y in Y");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("Nope"), std::string::npos);
}

TEST_F(WithConstructTest, ParseErrors) {
  EXPECT_FALSE(Parser::ParseQueryString(
                   "select x from x in X with = 3")
                   .ok());
  EXPECT_FALSE(Parser::ParseQueryString(
                   "select x from x in X with Yp 3")
                   .ok());
}

}  // namespace
}  // namespace n2j
