// Execution-option matrix: every optimized paper-shaped query must
// return the identical result under every combination of physical
// options (join algorithm × PNHL fast path × worker threads), with and
// without indexes. This is the guarantee that makes the logical/physical
// split safe — and that morsel-driven parallelism is invisible except in
// wall time.

#include <gtest/gtest.h>

#include "oosql/translate.h"
#include "tests/test_util.h"

namespace n2j {
namespace {

using testutil::EvalExpr;
using testutil::RewriteExpr;
using testutil::TranslateOrDie;

const char* kQueries[] = {
    "select x from x in X where exists y in Y : y.a = x.a",
    "select x from x in X where not exists y in Y : y.a = x.a",
    "select (a = x.a, n = count(Yp)) from x in X "
    "with Yp = select y from y in Y where y.a = x.a",
    "select x from x in X where x.c subseteq "
    "(select (d = y.e) from y in Y where y.a = x.a)",
    "select x.a from x in X where x.a in (select y.e from y in Y)",
};

class ExecOptionsMatrixTest : public ::testing::TestWithParam<int> {};

TEST_P(ExecOptionsMatrixTest, AllOptionCombinationsAgree) {
  auto db = std::make_unique<Database>();
  XYConfig config;
  config.seed = 97 + static_cast<uint64_t>(GetParam());
  config.x_rows = 30;
  config.y_rows = 35;
  ASSERT_TRUE(AddRandomXY(db.get(), config).ok());
  if (GetParam() % 2 == 0) {
    ASSERT_TRUE(db->CreateIndex("Y", "a").ok());
  }

  for (const char* q : kQueries) {
    ExprPtr naive = TranslateOrDie(*db, q);
    ExprPtr plan = RewriteExpr(*db, naive).expr;

    EvalOptions reference;
    reference.use_hash_joins = false;
    reference.enable_pnhl = false;
    Value expected = EvalExpr(*db, naive, reference);

    for (JoinAlgorithm algo :
         {JoinAlgorithm::kAuto, JoinAlgorithm::kHash,
          JoinAlgorithm::kSortMerge, JoinAlgorithm::kIndex,
          JoinAlgorithm::kNestedLoop}) {
      for (bool pnhl : {false, true}) {
        for (size_t budget : {SIZE_MAX, size_t{512}}) {
          for (int threads : {1, 4}) {
            for (bool compiled : {false, true}) {
              EvalOptions opts;
              opts.join_algorithm = algo;
              opts.enable_pnhl = pnhl;
              opts.pnhl_memory_budget = budget;
              opts.num_threads = threads;
              opts.compiled = compiled;
              Value actual = EvalExpr(*db, plan, opts);
              ASSERT_EQ(expected, actual)
                  << q << "\nalgo=" << static_cast<int>(algo)
                  << " pnhl=" << pnhl << " budget=" << budget
                  << " threads=" << threads << " compiled=" << compiled;
            }
          }
        }
      }
    }
  }
}

// Merged per-worker counters must equal the serial run's counters
// exactly — parallelism redistributes work, it never changes how much
// work is done.
TEST_P(ExecOptionsMatrixTest, ParallelStatsMatchSerial) {
  auto db = std::make_unique<Database>();
  XYConfig config;
  config.seed = 97 + static_cast<uint64_t>(GetParam());
  config.x_rows = 30;
  config.y_rows = 35;
  ASSERT_TRUE(AddRandomXY(db.get(), config).ok());

  for (const char* q : kQueries) {
    ExprPtr naive = TranslateOrDie(*db, q);
    ExprPtr plan = RewriteExpr(*db, naive).expr;

    for (bool compiled : {false, true}) {
      EvalOptions serial_opts;
      serial_opts.compiled = compiled;
      Evaluator serial(*db, serial_opts);
      Result<Value> sv = serial.Eval(plan);
      ASSERT_TRUE(sv.ok()) << q;

      EvalOptions mt_opts;
      mt_opts.num_threads = 4;
      mt_opts.compiled = compiled;
      Evaluator mt(*db, mt_opts);
      Result<Value> mv = mt.Eval(plan);
      ASSERT_TRUE(mv.ok()) << q;

      ASSERT_EQ(*sv, *mv) << q;
      EXPECT_EQ(serial.stats(), mt.stats())
          << q << " compiled=" << compiled
          << "\nserial: " << serial.stats().ToString()
          << "\n4-thread: " << mt.stats().ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecOptionsMatrixTest,
                         ::testing::Range(0, 4));

}  // namespace
}  // namespace n2j
