// Property-based testing of the rewrite engine: on many random databases
// and a family of query templates, the optimized plan must (a) evaluate
// to exactly the nested-loop result, (b) preserve the inferred type, and
// (c) never *increase* the number of base-table scans inside iterator
// parameters.

#include <gtest/gtest.h>

#include "adl/analysis.h"
#include "adl/typecheck.h"
#include "tests/test_util.h"

namespace n2j {
namespace {

using testutil::EvalExpr;
using testutil::RewriteExpr;
using testutil::TranslateOrDie;

struct Template {
  const char* name;
  const char* query;
};

// Query templates over the random X/Y tables (X : (a, c:{(d)}), Y : (a,e)).
const Template kTemplates[] = {
    {"semijoin",
     "select x from x in X where exists y in Y : y.a = x.a"},
    {"antijoin",
     "select x from x in X where not exists y in Y : y.a = x.a"},
    {"membership",
     "select x.a from x in X where x.a in (select y.a from y in Y)"},
    {"correlated_membership",
     "select x from x in X where x.a in "
     "(select y.e from y in Y where y.a = x.a)"},
    {"subseteq_grouping",
     "select x from x in X where x.c subseteq "
     "(select (d = y.e) from y in Y where y.a = x.a)"},
    {"supseteq_antijoin",
     "select x from x in X where x.c supseteq "
     "(select (d = y.e) from y in Y where y.a = x.a)"},
    {"proper_subset",
     "select x from x in X where x.c subset "
     "(select (d = y.e) from y in Y where y.a = x.a)"},
    {"set_equality",
     "select x from x in X where x.c = "
     "(select (d = y.e) from y in Y where y.a = x.a)"},
    {"count_compare",
     "select x from x in X where count(x.c) = "
     "count(select y from y in Y where y.a = x.a)"},
    {"empty_subquery",
     "select x from x in X where "
     "count(select y from y in Y where y.a = x.a) = 0"},
    {"nested_select_clause",
     "select (a = x.a, es = select y.e from y in Y where y.a = x.a) "
     "from x in X"},
    {"double_nesting",
     "select x from x in X where exists y in Y : y.a = x.a and "
     "(exists w in Y : w.e = y.e and w.a >= y.a)"},
    {"disjunction_stays_nested",
     "select x from x in X where (exists y in Y : y.a = x.a) or x.a = 0"},
    {"forall_over_attribute",
     "select x from x in X where forall z in x.c : "
     "exists y in Y : y.e = z.d"},
    {"uncorrelated_constant",
     "select x from x in X where x.a in (select y.a from y in Y)"},
};

class RewritePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RewritePropertyTest, OptimizedPlanIsEquivalent) {
  int seed = std::get<0>(GetParam());
  int template_index = std::get<1>(GetParam());
  const Template& tmpl = kTemplates[template_index];

  XYConfig config;
  config.seed = static_cast<uint64_t>(seed);
  config.x_rows = 12 + seed;
  config.y_rows = 10 + 2 * seed;
  config.key_domain = 5 + seed % 4;
  config.value_domain = 4 + seed % 3;
  config.empty_set_prob = 0.3;
  auto db = std::make_unique<Database>();
  ASSERT_TRUE(AddRandomXY(db.get(), config).ok());

  ExprPtr e = TranslateOrDie(*db, tmpl.query);

  // (a) result equivalence against the naive nested-loop evaluation.
  EvalOptions nested_loop;
  nested_loop.use_hash_joins = false;
  Value expected = EvalExpr(*db, e, nested_loop);
  RewriteResult r = RewriteExpr(*db, e);
  Value actual_nl = EvalExpr(*db, r.expr, nested_loop);
  Value actual_hash = EvalExpr(*db, r.expr);
  EXPECT_EQ(expected, actual_nl)
      << tmpl.name << "\nplan: " << AlgebraStr(r.expr) << "\n"
      << r.TraceToString();
  EXPECT_EQ(expected, actual_hash)
      << tmpl.name << " (hash execution)\nplan: " << AlgebraStr(r.expr);

  // (b) the rewrite preserves the inferred type.
  TypeChecker checker(db->schema(), db.get());
  Result<TypePtr> before = checker.Infer(e);
  Result<TypePtr> after = checker.Infer(r.expr);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  ASSERT_TRUE(after.ok())
      << tmpl.name << ": " << after.status().ToString() << "\nplan: "
      << AlgebraStr(r.expr);
  EXPECT_TRUE(before->get()->Equals(**after)) << tmpl.name;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RewritePropertyTest,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Range(0, static_cast<int>(
                                               std::size(kTemplates)))),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return std::string(kTemplates[std::get<1>(info.param)].name) +
             "_seed" + std::to_string(std::get<0>(info.param));
    });

TEST(RewriteDeterminism, SameInputSamePlan) {
  auto db = std::make_unique<Database>();
  ASSERT_TRUE(AddRandomXY(db.get(), XYConfig()).ok());
  ExprPtr e = TranslateOrDie(
      *db, "select x from x in X where exists y in Y : y.a = x.a");
  RewriteResult a = RewriteExpr(*db, e);
  RewriteResult b = RewriteExpr(*db, e);
  EXPECT_TRUE(a.expr->Equals(*b.expr));
}

TEST(RewriteIdempotence, SecondRewriteIsNoOp) {
  auto db = std::make_unique<Database>();
  ASSERT_TRUE(AddRandomXY(db.get(), XYConfig()).ok());
  for (const Template& tmpl : kTemplates) {
    ExprPtr e = TranslateOrDie(*db, tmpl.query);
    RewriteResult once = RewriteExpr(*db, e);
    RewriteResult twice = RewriteExpr(*db, once.expr);
    EXPECT_TRUE(once.expr->Equals(*twice.expr)) << tmpl.name;
  }
}

}  // namespace
}  // namespace n2j
