#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace n2j {
namespace {

using testutil::CheckEquivalence;
using testutil::RewriteExpr;
using testutil::TranslateOrDie;

class SimplifyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testutil::SmallSupplierDb();
    ASSERT_TRUE(AddRandomXY(db_.get(), XYConfig()).ok());
    // Simplify-only options.
    opts_ = RewriteOptions();
    opts_.enable_setcmp = false;
    opts_.enable_quantifier = false;
    opts_.enable_map_join = false;
    opts_.enable_unnest_attr = false;
    opts_.enable_hoist = false;
    opts_.grouping = GroupingMode::kNone;
  }

  std::unique_ptr<Database> db_;
  RewriteOptions opts_;
};

TEST_F(SimplifyTest, TrueSelectionRemoved) {
  ExprPtr e = Expr::Select("x", Expr::True(), Expr::Table("X"));
  RewriteResult r = RewriteExpr(*db_, e, opts_);
  EXPECT_EQ(r.expr->kind(), ExprKind::kGetTable);
}

TEST_F(SimplifyTest, FalseSelectionBecomesEmpty) {
  ExprPtr e = Expr::Select("x", Expr::False(), Expr::Table("X"));
  RewriteResult r = RewriteExpr(*db_, e, opts_);
  EXPECT_EQ(r.expr->kind(), ExprKind::kConst);
  EXPECT_EQ(r.expr->const_value().set_size(), 0u);
}

TEST_F(SimplifyTest, IdentityMapRemoved) {
  ExprPtr e = Expr::Map("x", Expr::Var("x"), Expr::Table("X"));
  RewriteResult r = RewriteExpr(*db_, e, opts_);
  EXPECT_EQ(r.expr->kind(), ExprKind::kGetTable);
}

TEST_F(SimplifyTest, FromClauseCompositionRemoved) {
  // select d from d in (select e from e in DELIVERY where e.date = 940101)
  // where d.date = 940101  — Example Query 2's shape.
  ExprPtr e = TranslateOrDie(
      *db_,
      "select d from d in (select e from e in DELIVERY "
      "where e.supplier.sname = \"s1\") where d.date > 940000");
  RewriteResult r = CheckEquivalence(*db_, e, opts_);
  // After fusion there is a single selection over the base table: no
  // nested sfw-block remains.
  EXPECT_TRUE(r.Fired("Simplify-SelectFusion") ||
              r.Fired("MergeFrom-SelectOverMap") ||
              r.Fired("Simplify-IdentityMap"))
      << r.TraceToString();
  // The result is σ (possibly under α) directly over DELIVERY.
  const Expr* node = r.expr.get();
  if (node->kind() == ExprKind::kMap) node = node->child(0).get();
  ASSERT_EQ(node->kind(), ExprKind::kSelect);
  EXPECT_EQ(node->child(0)->kind(), ExprKind::kGetTable);
}

TEST_F(SimplifyTest, MapCompositionFuses) {
  // α[a : a + 1](α[x : x.a](X)) ⇒ α[x : x.a + 1](X)
  ExprPtr inner = Expr::Map("x", Expr::Access(Expr::Var("x"), "a"),
                            Expr::Table("X"));
  ExprPtr e = Expr::Map(
      "v", Expr::Bin(BinOp::kAdd, Expr::Var("v"), Expr::Const(Value::Int(1))),
      inner);
  RewriteResult r = CheckEquivalence(*db_, e, opts_);
  EXPECT_TRUE(r.Fired("MergeFrom-MapComposition")) << r.TraceToString();
  EXPECT_EQ(r.expr->kind(), ExprKind::kMap);
  EXPECT_EQ(r.expr->child(0)->kind(), ExprKind::kGetTable);
}

TEST_F(SimplifyTest, BooleanConstantFolding) {
  ExprPtr e = Expr::Select(
      "x", Expr::And(Expr::True(), Expr::Not(Expr::Not(Expr::Eq(
                                       Expr::Access(Expr::Var("x"), "a"),
                                       Expr::Const(Value::Int(1)))))),
      Expr::Table("X"));
  RewriteResult r = CheckEquivalence(*db_, e, opts_);
  // The predicate collapses to the bare comparison.
  EXPECT_EQ(r.expr->child(1)->kind(), ExprKind::kBinary);
}

TEST_F(SimplifyTest, QuantifierOverEmptyConstant) {
  ExprPtr e = Expr::Quant(QuantKind::kExists, "v",
                          Expr::Const(Value::EmptySet()), Expr::True());
  RewriteResult r = RewriteExpr(*db_, e, opts_);
  EXPECT_EQ(r.expr->kind(), ExprKind::kConst);
  EXPECT_EQ(r.expr->const_value(), Value::Bool(false));
}

TEST_F(SimplifyTest, UnusedLetDropped) {
  ExprPtr e = Expr::Let("v", Expr::Table("X"), Expr::Const(Value::Int(1)));
  RewriteResult r = RewriteExpr(*db_, e, opts_);
  EXPECT_EQ(r.expr->kind(), ExprKind::kConst);
}

TEST_F(SimplifyTest, SelectFusionAvoidsCapture) {
  // Outer pred references a free variable named like the inner binder.
  // σ[x : x.a = y.a](σ[y : y.a > 0](X)) with free outer y — fusing must
  // rename the inner y.
  ExprPtr inner = Expr::Select(
      "y", Expr::Bin(BinOp::kGt, Expr::Access(Expr::Var("y"), "a"),
                     Expr::Const(Value::Int(-100))),
      Expr::Table("X"));
  ExprPtr e = Expr::Select(
      "x", Expr::Eq(Expr::Access(Expr::Var("x"), "a"),
                    Expr::Access(Expr::Var("y"), "a")),
      inner);
  // Close the expression with a let binding y to a row value.
  ExprPtr closed = Expr::Let(
      "y", Expr::Const(Value::Tuple({Field("a", Value::Int(1))})), e);
  CheckEquivalence(*db_, closed, opts_);
}

TEST_F(SimplifyTest, SimplifyIsIdempotent) {
  ExprPtr e = TranslateOrDie(
      *db_, "select s.sname from s in SUPPLIER where s.sname <> \"s1\"");
  RewriteResult once = RewriteExpr(*db_, e, opts_);
  RewriteResult twice = RewriteExpr(*db_, once.expr, opts_);
  EXPECT_TRUE(once.expr->Equals(*twice.expr));
}

}  // namespace
}  // namespace n2j
