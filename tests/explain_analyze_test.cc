// Profiled execution (EXPLAIN ANALYZE): golden span trees for the
// paper's worked queries, the span-sum invariant (exclusive deltas over
// the whole trace reconstruct the global EvalStats exactly, serial and
// parallel), tracing as a pure observer, Chrome-trace structure, and
// the process-wide metrics registry.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/datagen.h"

namespace n2j {
namespace {

// Example Query 4: "suppliers supplying non-existing parts" — the
// unnest + antijoin plan (paper_queries_test pins the plan shape; here
// we pin its profile).
constexpr char kQuery4[] =
    "select s.eid from s in SUPPLIER where "
    "exists z in s.parts : not exists p in PART : z.pid = p.pid";

// Example Query 6: select-clause nesting — the nestjoin plan.
constexpr char kQuery6[] =
    "select (sname = s.sname, "
    "        partssuppl = select p from p in PART "
    "                     where p[pid] in s.parts) "
    "from s in SUPPLIER";

/// The Figure 1 query σ[x : x.c ⊆ σ[y : x.a = y.a](Y)](X) as ADL.
ExprPtr Fig1Query() {
  ExprPtr subq = Expr::Map(
      "y", Expr::TupleConstruct({"d"}, {Expr::Access(Expr::Var("y"), "e")}),
      Expr::Select("y",
                   Expr::Eq(Expr::Access(Expr::Var("x"), "a"),
                            Expr::Access(Expr::Var("y"), "a")),
                   Expr::Table("Y")));
  return Expr::Select(
      "x",
      Expr::Bin(BinOp::kSubsetEq, Expr::Access(Expr::Var("x"), "c"), subq),
      Expr::Table("X"));
}

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SupplierPartConfig config;
    config.seed = 21;
    config.num_parts = 50;
    config.num_suppliers = 20;
    config.parts_per_supplier = 6;
    config.red_fraction = 0.25;
    config.match_fraction = 0.85;
    config.num_deliveries = 30;
    db_ = MakeSupplierPartDatabase(config);

    xy_db_ = std::make_unique<Database>();
    XYConfig xy;
    xy.seed = 5;
    xy.x_rows = 50;
    xy.y_rows = 50;
    xy.key_domain = 26;
    xy.empty_set_prob = 0.2;
    N2J_CHECK(AddRandomXY(xy_db_.get(), xy).ok());
  }

  /// Runs `oosql` with tracing attached and returns the deterministic
  /// (time-masked) rendering of the span tree.
  std::string Profile(const std::string& oosql, int num_threads = 1) {
    EvalOptions eval;
    eval.num_threads = num_threads;
    eval.trace = &collector_;
    QueryEngine engine(db_.get(), RewriteOptions(), eval);
    Result<QueryReport> r = engine.Run(oosql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) return "";
    EXPECT_EQ(r->profile, &collector_);
    return collector_.Render({.show_time = false});
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Database> xy_db_;
  TraceCollector collector_;
};

TEST_F(ExplainAnalyzeTest, GoldenProfileQuery4) {
  std::string rendered = Profile(kQuery4);
  EXPECT_EQ(rendered,
            "query                       in=0 out=11 | nodes=1\n"
            "  map                       in=19 out=11 | scanned=19 nodes=1"
            " compiled=19\n"
            "    antijoin [hash keys=1]  in=117 build=50 out=19 peak_hash=50"
            " | scanned=167 h_ins=50 h_probe=117 nodes=2 compiled=167"
            " hash_joins=1\n"
            "      unnest                in=20 out=117 | scanned=20"
            " nodes=1\n")
      << "actual:\n" << rendered;
}

TEST_F(ExplainAnalyzeTest, GoldenProfileQuery6) {
  std::string rendered = Profile(kQuery6);
  EXPECT_EQ(rendered,
            "query                                 in=0 out=20 | nodes=1\n"
            "  map                                 in=20 out=20 |"
            " scanned=20 nodes=1 compiled=20\n"
            "    nestjoin [membership attr=parts]  in=20 build=50 out=20"
            " peak_hash=50 | scanned=70 h_ins=50 h_probe=117 nodes=2"
            " compiled=148 mem_joins=1\n")
      << "actual:\n" << rendered;
}

TEST_F(ExplainAnalyzeTest, GoldenProfileFig1NestedQuery) {
  TraceCollector tc;
  EvalOptions eval;
  eval.trace = &tc;
  QueryEngine engine(xy_db_.get(), RewriteOptions(), eval);
  Result<QueryReport> r = engine.RunAdl(Fig1Query());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::string rendered = tc.Render({.show_time = false});
  EXPECT_EQ(rendered,
            "query                         in=0 out=17 | nodes=1\n"
            "  project                     in=17 out=17 | scanned=17"
            " nodes=1\n"
            "    select                    in=44 out=17 | scanned=44"
            " preds=44 nodes=1 compiled=44\n"
            "      nestjoin [hash keys=1]  in=44 build=45 out=44"
            " peak_hash=21 | scanned=89 h_ins=45 h_probe=44 nodes=2"
            " compiled=176 hash_joins=1\n")
      << "actual:\n" << rendered;
}

TEST_F(ExplainAnalyzeTest, ExplainGrowsProfileSectionWhenTraced) {
  EvalOptions eval;
  eval.trace = &collector_;
  QueryEngine engine(db_.get(), RewriteOptions(), eval);
  Result<QueryReport> r = engine.Run(kQuery4);
  ASSERT_TRUE(r.ok());
  std::string explain = r->Explain();
  EXPECT_NE(explain.find("profile:\n"), std::string::npos) << explain;
  EXPECT_NE(explain.find("stats:"), std::string::npos);
  EXPECT_NE(explain.find("antijoin"), std::string::npos) << explain;

  // Untraced engines keep the classic explain: no profile section.
  QueryEngine plain(db_.get());
  Result<QueryReport> p = plain.Run(kQuery4);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->Explain().find("profile:"), std::string::npos);
}

// The tentpole invariant: the exclusive EvalStats deltas over the whole
// span tree sum exactly to the evaluator's global counters — per query,
// serial and 4-thread, interpreted and compiled.
TEST_F(ExplainAnalyzeTest, SpanStatsSumToGlobalStats) {
  const std::vector<std::string> queries = {kQuery4, kQuery6,
                                            "select s from s in SUPPLIER"};
  for (const std::string& q : queries) {
    for (int threads : {1, 4}) {
      for (bool compiled : {false, true}) {
        TraceCollector tc;
        EvalOptions eval;
        eval.num_threads = threads;
        eval.compiled = compiled;
        eval.trace = &tc;
        QueryEngine engine(db_.get(), RewriteOptions(), eval);
        Result<QueryReport> r = engine.Run(q);
        ASSERT_TRUE(r.ok()) << q;
        EXPECT_EQ(tc.SumExclusiveStats().Compact(),
                  r->exec_stats.Compact())
            << q << " threads=" << threads << " compiled=" << compiled
            << "\n" << tc.Render();
      }
    }
  }
}

// Tracing must be a pure observer: identical result values and identical
// global counters with and without a collector attached.
TEST_F(ExplainAnalyzeTest, TracingChangesNeitherResultsNorStats) {
  for (int threads : {1, 4}) {
    EvalOptions plain;
    plain.num_threads = threads;
    QueryEngine untraced(db_.get(), RewriteOptions(), plain);
    Result<QueryReport> base = untraced.Run(kQuery6);
    ASSERT_TRUE(base.ok());

    TraceCollector tc;
    EvalOptions traced_opts = plain;
    traced_opts.trace = &tc;
    QueryEngine traced(db_.get(), RewriteOptions(), traced_opts);
    Result<QueryReport> prof = traced.Run(kQuery6);
    ASSERT_TRUE(prof.ok());

    EXPECT_EQ(base->result, prof->result) << "threads=" << threads;
    EXPECT_EQ(base->exec_stats.Compact(), prof->exec_stats.Compact())
        << "threads=" << threads;
  }
}

TEST_F(ExplainAnalyzeTest, ChromeTraceHasOperatorAndWorkerTracks) {
  TraceCollector tc;
  EvalOptions eval;
  eval.num_threads = 4;
  eval.trace = &tc;
  QueryEngine engine(db_.get(), RewriteOptions(), eval);
  ASSERT_TRUE(engine.Run(kQuery6).ok());

  // 4 worker threads over 20 suppliers: the parallel operators must have
  // recorded morsel timestamps.
  ASSERT_FALSE(tc.spans().empty());
  ASSERT_FALSE(tc.worker_spans().empty());

  std::string json = ChromeTraceJson(tc);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"evaluator\""), std::string::npos);
  EXPECT_NE(json.find("\"worker 0\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Every operator span and worker morsel became one complete event.
  size_t x_events = 0;
  for (size_t pos = 0; (pos = json.find("\"ph\":\"X\"", pos)) !=
                       std::string::npos;
       ++pos) {
    ++x_events;
  }
  EXPECT_EQ(x_events, tc.spans().size() + tc.worker_spans().size());
  // Worker morsels land on tids 1+w, separate from the evaluator's 0.
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, MetricsRegistryCountsQueries) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.Reset();
  QueryEngine engine(db_.get());
  ASSERT_TRUE(engine.Run(kQuery4).ok());
  ASSERT_TRUE(engine.Run(kQuery6).ok());
  EXPECT_FALSE(engine.Run("select (").ok());

  EXPECT_EQ(reg.GetCounter("n2j_queries_total").value(), 3u);
  EXPECT_EQ(reg.GetCounter("n2j_query_errors_total").value(), 1u);
  // Query 4 runs a hash antijoin; Query 6's nestjoin executes as a
  // membership join (`p[pid] in s.parts`).
  EXPECT_GE(reg.GetCounter("n2j_joins_hash_total").value(), 1u);
  EXPECT_GE(reg.GetCounter("n2j_joins_membership_total").value(), 1u);
  EXPECT_EQ(reg.GetHistogram("n2j_query_ms").count(), 3u);
  EXPECT_EQ(reg.GetHistogram("n2j_eval_ms").count(), 2u);

  std::string rendered = reg.Render();
  EXPECT_NE(rendered.find("n2j_queries_total"), std::string::npos);
  EXPECT_NE(rendered.find("n2j_query_ms"), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, CollectorClearsBetweenQueries) {
  EvalOptions eval;
  eval.trace = &collector_;
  QueryEngine engine(db_.get(), RewriteOptions(), eval);
  ASSERT_TRUE(engine.Run(kQuery4).ok());
  size_t first = collector_.spans().size();
  ASSERT_TRUE(engine.Run(kQuery4).ok());
  // The engine clears the collector per query — spans do not accumulate.
  EXPECT_EQ(collector_.spans().size(), first);
}

}  // namespace
}  // namespace n2j
