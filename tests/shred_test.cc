// The shredded backend (ISSUE 7 tentpole): translator structure,
// backend equivalence against the nested-loop interpreter, stitching
// edge cases (empty inner sets, duplicates under set semantics,
// three-level nesting), error parity, and the span-sum invariant on the
// flat-DAG executor.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "adl/printer.h"
#include "core/engine.h"
#include "obs/trace.h"
#include "shred/shred.h"
#include "tests/test_util.h"

namespace n2j {
namespace {

using testutil::SmallSupplierDb;
using testutil::TranslateOrDie;

/// Evaluates `e` under both backends with the given options; the
/// results must agree bit-for-bit whenever the interpreter succeeds,
/// and the shredded backend may only fail when the interpreter fails.
void CheckBackends(const Database& db, const ExprPtr& e,
                   EvalOptions opts = EvalOptions()) {
  opts.backend = Backend::kNested;
  EvalStats nested_stats;
  Result<Value> nested =
      shred::EvalWithBackend(db, e, opts, &nested_stats);
  opts.backend = Backend::kShredded;
  EvalStats shred_stats;
  Result<Value> shredded =
      shred::EvalWithBackend(db, e, opts, &shred_stats);
  if (nested.ok()) {
    ASSERT_TRUE(shredded.ok())
        << AlgebraStr(e) << "\nshredded error where interpreter succeeded: "
        << shredded.status().ToString();
    EXPECT_EQ(*nested, *shredded) << AlgebraStr(e);
  } else {
    EXPECT_FALSE(shredded.ok())
        << AlgebraStr(e) << "\nshredded succeeded where interpreter failed: "
        << nested.status().ToString();
  }
}

// ---------------------------------------------------------------------
// Translator structure
// ---------------------------------------------------------------------

TEST(ShredTranslate, NestedSelectClauseBecomesTwoNodeDag) {
  std::unique_ptr<Database> db = SmallSupplierDb();
  ExprPtr e = TranslateOrDie(
      *db,
      "select (sname = s.sname, ps = select p from p in s.parts) "
      "from s in SUPPLIER");
  shred::ShredPlan plan = shred::ShredQuery(e);
  ASSERT_FALSE(plan.scalar_root);
  ASSERT_EQ(plan.nodes.size(), 2u) << plan.Describe();

  const shred::FlatNode& root = plan.nodes[0];
  ASSERT_EQ(root.ranges.size(), 1u) << plan.Describe();
  EXPECT_EQ(root.ranges[0].kind, shred::RangeKind::kExtent);
  EXPECT_EQ(root.ranges[0].table, "SUPPLIER");
  ASSERT_EQ(root.out.kind, shred::OutputSpec::Kind::kTuple);
  ASSERT_EQ(root.out.fields.size(), 2u);
  EXPECT_EQ(root.out.fields[0].kind, shred::OutputSpec::Kind::kScalar);
  ASSERT_EQ(root.out.fields[1].kind, shred::OutputSpec::Kind::kChild);
  EXPECT_EQ(root.out.fields[1].child, 1);

  const shred::FlatNode& inner = plan.nodes[1];
  ASSERT_EQ(inner.ctx_vars.size(), 1u);
  EXPECT_EQ(inner.ctx_vars[0], root.ranges[0].var);
  ASSERT_EQ(inner.ranges.size(), 1u) << plan.Describe();
  EXPECT_EQ(inner.ranges[0].kind, shred::RangeKind::kChildAttr);
  EXPECT_EQ(inner.ranges[0].attr, "parts");
  EXPECT_EQ(plan.structural_ranges, 2);
}

TEST(ShredTranslate, SelectLayersCollapseIntoRangePredicate) {
  std::unique_ptr<Database> db = SmallSupplierDb();
  ExprPtr e = TranslateOrDie(
      *db, "select p.pname from p in PART where p.color = \"red\"");
  shred::ShredPlan plan = shred::ShredQuery(e);
  ASSERT_FALSE(plan.scalar_root);
  ASSERT_EQ(plan.nodes.size(), 1u) << plan.Describe();
  ASSERT_EQ(plan.nodes[0].ranges.size(), 1u);
  EXPECT_EQ(plan.nodes[0].ranges[0].kind, shred::RangeKind::kExtent);
  EXPECT_NE(plan.nodes[0].ranges[0].pred, nullptr) << plan.Describe();
}

TEST(ShredTranslate, NonComprehensionRootDegeneratesToScalar) {
  shred::ShredPlan plan = shred::ShredQuery(Expr::Const(Value::Int(7)));
  EXPECT_TRUE(plan.scalar_root);
  EXPECT_TRUE(plan.nodes.empty());

  std::unique_ptr<Database> db = SmallSupplierDb();
  EvalStats stats;
  Result<Value> v = shred::EvalShredded(*db, Expr::Const(Value::Int(7)),
                                        EvalOptions(), &stats);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::Int(7));
}

// ---------------------------------------------------------------------
// Stitching edge cases
// ---------------------------------------------------------------------

class ShredStitchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    // N: three-level nesting with empty sets at both inner levels.
    TypePtr leaf = Type::Set(Type::Int());
    TypePtr mid = Type::Set(Type::Tuple({{"j", Type::Int()},
                                         {"zs", leaf}}));
    ASSERT_TRUE(db_->CreateTable(
                       "N", Type::Tuple({{"k", Type::Int()}, {"ys", mid}}))
                    .ok());
    auto z = [](std::vector<int> xs) {
      std::vector<Value> vs;
      for (int x : xs) vs.push_back(Value::Int(x));
      return Value::Set(std::move(vs));
    };
    auto y = [&](int j, std::vector<int> zs) {
      return Value::Tuple({Field("j", Value::Int(j)), Field("zs", z(zs))});
    };
    auto row = [&](int k, std::vector<Value> ys) {
      ASSERT_TRUE(db_->Insert("N", Value::Tuple(
                                       {Field("k", Value::Int(k)),
                                        Field("ys", Value::Set(ys))}))
                      .ok());
    };
    row(1, {y(10, {1, 2, 3}), y(11, {})});
    row(2, {});                        // empty middle set
    row(3, {y(12, {4}), y(13, {4})});  // duplicate leaf values
    row(4, {y(10, {1, 2, 3})});        // shares inner structure with k=1

    // D: heavy duplication under set semantics.
    ASSERT_TRUE(db_->CreateTable(
                       "D", Type::Tuple({{"k", Type::Int()},
                                         {"v", Type::Int()}}))
                    .ok());
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(db_->Insert("D", Value::Tuple(
                                       {Field("k", Value::Int(i % 3)),
                                        Field("v", Value::Int(i))}))
                      .ok());
    }
  }
  std::unique_ptr<Database> db_;
};

TEST_F(ShredStitchTest, EmptyInnerSetsSurvive) {
  // Rows whose set attribute is empty must appear with ∅, not vanish.
  ExprPtr e = TranslateOrDie(
      *db_, "select (k = x.k, js = select y.j from y in x.ys) from x in N");
  CheckBackends(*db_, e);

  EvalStats stats;
  Result<Value> v =
      shred::EvalShredded(*db_, e, EvalOptions(), &stats);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->set_size(), 4u);  // k=2 present with js = {}
  bool saw_empty = false;
  for (const Value& t : v->elements()) {
    if (t.FindField("js")->set_size() == 0) saw_empty = true;
  }
  EXPECT_TRUE(saw_empty) << v->ToString();
}

TEST_F(ShredStitchTest, DuplicatesCollapseUnderSetSemantics) {
  // 40 rows project onto 3 distinct keys; both backends must dedup
  // identically. Also: two outer rows producing identical nested
  // results must collapse to one element of the outer set.
  CheckBackends(*db_, TranslateOrDie(*db_, "select d.k from d in D"));
  CheckBackends(*db_, TranslateOrDie(
                          *db_,
                          "select (j = y.j, zs = y.zs) from x in N, "
                          "y in x.ys"));
}

TEST_F(ShredStitchTest, ThreeLevelNesting) {
  ExprPtr e = TranslateOrDie(
      *db_,
      "select (k = x.k, inner = select (j = y.j, "
      "                                 leaf = select z from z in y.zs) "
      "                 from y in x.ys) "
      "from x in N");
  CheckBackends(*db_, e);

  EvalStats stats;
  std::string plan_text;
  Result<Value> v =
      shred::EvalShredded(*db_, e, EvalOptions(), &stats, &plan_text);
  ASSERT_TRUE(v.ok());
  // Three levels ⇒ three DAG nodes.
  EXPECT_NE(plan_text.find("node2"), std::string::npos) << plan_text;
}

TEST_F(ShredStitchTest, FlattenCollapsesIntoStitchedUnion) {
  CheckBackends(*db_,
                TranslateOrDie(*db_, "select z from x in N, y in x.ys, "
                                     "z in y.zs"));
}

// ---------------------------------------------------------------------
// Backend equivalence on the supplier–part workload
// ---------------------------------------------------------------------

TEST(ShredBackend, SupplierPartQueriesAgreeUnderAllJoinModes) {
  std::unique_ptr<Database> db = SmallSupplierDb();
  const char* queries[] = {
      // Nested select clause (Fig. 1 shape).
      "select (sname = s.sname, ps = select p from p in s.parts) "
      "from s in SUPPLIER",
      // Filtered extent with an equi-join-shaped predicate: exercises
      // the hash/sort-merge expansion inside a flat node.
      "select (a = x.pname, b = y.pname) from x in PART, y in PART "
      "where x.price = y.price",
      // Correlated filter on the child range.
      "select (sname = s.sname, "
      "        cheap = select z.pid from z in s.parts) "
      "from s in SUPPLIER where s.sname <> \"s1\"",
      // Flatten over a set attribute.
      "select z from s in SUPPLIER, z in s.parts",
  };
  for (const char* q : queries) {
    SCOPED_TRACE(q);
    ExprPtr e = TranslateOrDie(*db, q);
    for (JoinAlgorithm alg :
         {JoinAlgorithm::kNestedLoop, JoinAlgorithm::kHash,
          JoinAlgorithm::kSortMerge}) {
      EvalOptions opts;
      opts.join_algorithm = alg;
      opts.use_hash_joins = alg != JoinAlgorithm::kNestedLoop;
      CheckBackends(*db, e, opts);
    }
    // Parallel delegates.
    EvalOptions mt;
    mt.num_threads = 4;
    CheckBackends(*db, e, mt);
  }
}

TEST(ShredBackend, ScalarEngineThreadCountsAgreeWithExactStats) {
  // The scalar engine (vectorized=false) under num_threads {1,2,4}:
  // morsel order restores row order bit-for-bit, and successful queries
  // merge to exactly the serial counters — the morsels partition the
  // same row space the serial loops walk.
  std::unique_ptr<Database> db = SmallSupplierDb();
  const char* queries[] = {
      "select (sname = s.sname, ps = select p from p in s.parts) "
      "from s in SUPPLIER",
      "select (a = x.pname, b = y.pname) from x in PART, y in PART "
      "where x.price = y.price",
      "select (a = x.pname, b = y.pname) from x in PART, y in PART "
      "where x.price < y.price",
      "select z from s in SUPPLIER, z in s.parts",
  };
  for (const char* q : queries) {
    SCOPED_TRACE(q);
    ExprPtr e = TranslateOrDie(*db, q);
    EvalOptions serial;
    serial.backend = Backend::kShredded;
    serial.vectorized = false;
    serial.num_threads = 1;
    EvalStats s1;
    Result<Value> v1 = shred::EvalWithBackend(*db, e, serial, &s1);
    ASSERT_TRUE(v1.ok()) << v1.status().ToString();
    for (int nt : {2, 4}) {
      EvalOptions mt = serial;
      mt.num_threads = nt;
      EvalStats sn;
      Result<Value> vn = shred::EvalWithBackend(*db, e, mt, &sn);
      ASSERT_TRUE(vn.ok()) << "nt=" << nt << "\n" << vn.status().ToString();
      EXPECT_EQ(*v1, *vn) << "nt=" << nt;
      EXPECT_EQ(s1.Compact(), sn.Compact()) << "nt=" << nt;
    }
  }
}

TEST(ShredBackend, ErrorParityOnNonBooleanPredicate) {
  std::unique_ptr<Database> db = SmallSupplierDb();
  // σ[p : 1](PART): the interpreter rejects the non-boolean predicate;
  // the shredded backend must fail too (never silently succeed).
  ExprPtr bad = Expr::Select("p", Expr::Const(Value::Int(1)),
                             Expr::Table("PART"));
  CheckBackends(*db, bad);
}

TEST(ShredBackend, ErrorParityOnMissingTable) {
  std::unique_ptr<Database> db = SmallSupplierDb();
  ExprPtr bad = Expr::Map("x", Expr::Var("x"), Expr::Table("NO_SUCH"));
  CheckBackends(*db, bad);
}

// ---------------------------------------------------------------------
// Observability: span-sum invariant and EXPLAIN integration
// ---------------------------------------------------------------------

TEST(ShredBackend, SpanSumInvariantAcrossDagNodes) {
  std::unique_ptr<Database> db = SmallSupplierDb();
  ExprPtr e = TranslateOrDie(
      *db,
      "select (sname = s.sname, ps = select p.pid from p in s.parts) "
      "from s in SUPPLIER");
  TraceCollector tc;
  EvalOptions opts;
  opts.trace = &tc;
  EvalStats stats;
  Result<Value> v = shred::EvalShredded(*db, e, opts, &stats);
  ASSERT_TRUE(v.ok()) << v.status().ToString();

  // Per-DAG-node spans exist...
  bool saw_root = false, saw_node = false;
  for (const TraceSpan& s : tc.spans()) {
    if (s.op == "shredded") saw_root = true;
    if (s.op == "shred-node") saw_node = true;
  }
  EXPECT_TRUE(saw_root);
  EXPECT_TRUE(saw_node);
  // ...and their exclusive stat deltas sum exactly to the globals.
  EXPECT_EQ(tc.SumExclusiveStats().Compact(), stats.Compact());
}

TEST(ShredBackend, SpanSumInvariantHoldsUnderMorselParallelism) {
  // Worker counters merge into the delegate's stats before each node
  // span closes, so exclusive deltas still telescope to the globals at
  // num_threads=4 — for both the scalar and the vectorized engine.
  std::unique_ptr<Database> db = SmallSupplierDb();
  const char* queries[] = {
      "select (sname = s.sname, ps = select p.pid from p in s.parts) "
      "from s in SUPPLIER",
      "select (a = x.pname, b = y.pname) from x in PART, y in PART "
      "where x.price = y.price",
  };
  for (const char* q : queries) {
    SCOPED_TRACE(q);
    ExprPtr e = TranslateOrDie(*db, q);
    for (bool vectorized : {false, true}) {
      TraceCollector tc;
      EvalOptions opts;
      opts.trace = &tc;
      opts.num_threads = 4;
      opts.vectorized = vectorized;
      EvalStats stats;
      Result<Value> v = shred::EvalShredded(*db, e, opts, &stats);
      ASSERT_TRUE(v.ok()) << v.status().ToString();
      EXPECT_EQ(tc.SumExclusiveStats().Compact(), stats.Compact())
          << "vectorized=" << vectorized;
    }
  }
}

TEST(ShredBackend, ExplainShowsShreddedPlan) {
  std::unique_ptr<Database> db = SmallSupplierDb();
  QueryEngine engine(db.get());
  engine.eval_options().backend = Backend::kShredded;
  Result<QueryReport> r = engine.Run(
      "select (sname = s.sname, ps = select p.pid from p in s.parts) "
      "from s in SUPPLIER");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::string explain = r->Explain();
  EXPECT_NE(explain.find("backend:    shredded"), std::string::npos)
      << explain;
  EXPECT_NE(explain.find("shredded plan:"), std::string::npos) << explain;
  EXPECT_NE(explain.find("node0"), std::string::npos) << explain;

  // The engine-level result equals the default backend's.
  QueryEngine nested(db.get());
  Result<QueryReport> n = nested.Run(
      "select (sname = s.sname, ps = select p.pid from p in s.parts) "
      "from s in SUPPLIER");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->result, r->result);
}

}  // namespace
}  // namespace n2j
