#include "oosql/translate.h"

#include <gtest/gtest.h>

#include "adl/printer.h"
#include "tests/test_util.h"

namespace n2j {
namespace {

class TranslateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testutil::SmallSupplierDb();
    ASSERT_TRUE(AddRandomXY(db_.get(), XYConfig()).ok());
  }

  TypedExpr Tr(const std::string& text) {
    Translator tr(db_->schema(), db_.get());
    Result<TypedExpr> r = tr.TranslateString(text);
    EXPECT_TRUE(r.ok()) << text << "\n" << r.status().ToString();
    if (!r.ok()) std::abort();
    return *r;
  }

  Status TrError(const std::string& text) {
    Translator tr(db_->schema(), db_.get());
    Result<TypedExpr> r = tr.TranslateString(text);
    EXPECT_FALSE(r.ok()) << text << " unexpectedly translated";
    return r.ok() ? Status::OK() : r.status();
  }

  std::unique_ptr<Database> db_;
};

TEST_F(TranslateTest, SimpleSelectBecomesMapOverSelect) {
  TypedExpr t = Tr(
      "select p.pname from p in PART where p.color = \"red\"");
  // α[p : p.pname](σ[p : p.color = "red"](PART))
  EXPECT_EQ(t.expr->kind(), ExprKind::kMap);
  EXPECT_EQ(t.expr->child(0)->kind(), ExprKind::kSelect);
  EXPECT_EQ(t.expr->child(0)->child(0)->kind(), ExprKind::kGetTable);
  EXPECT_TRUE(t.type->is_set());
  EXPECT_TRUE(t.type->element()->is_string());
}

TEST_F(TranslateTest, NoWhereClauseOmitsSelection) {
  TypedExpr t = Tr("select p.price from p in PART");
  EXPECT_EQ(t.expr->kind(), ExprKind::kMap);
  EXPECT_EQ(t.expr->child(0)->kind(), ExprKind::kGetTable);
}

TEST_F(TranslateTest, MultiRangeBecomesFlattenedNest) {
  TypedExpr t = Tr(
      "select (a = x.a, e = y.e) from x in X, y in Y where x.a = y.a");
  EXPECT_EQ(t.expr->kind(), ExprKind::kFlatten);
  EXPECT_EQ(t.expr->child(0)->kind(), ExprKind::kMap);
  EXPECT_TRUE(t.type->element()->is_tuple());
}

TEST_F(TranslateTest, DependentRangeOverSetAttribute) {
  TypedExpr t = Tr("select x.pid from s in SUPPLIER, x in s.parts");
  EXPECT_EQ(t.expr->kind(), ExprKind::kFlatten);
  // The element type is the Ref(Part) stored in parts elements.
  EXPECT_TRUE(t.type->element()->is_ref());
}

TEST_F(TranslateTest, PathThroughReferenceInsertsDeref) {
  TypedExpr t = Tr(
      "select d from d in DELIVERY where d.supplier.sname = \"s1\"");
  std::string printed = AlgebraStr(t.expr);
  EXPECT_NE(printed.find("deref<Supplier>"), std::string::npos) << printed;
}

TEST_F(TranslateTest, TypesOfLiteralsAndOps) {
  EXPECT_TRUE(Tr("select p.price * 2 from p in PART")
                  .type->element()->is_int());
  EXPECT_TRUE(Tr("select p.price * 1.5 from p in PART")
                  .type->element()->is_double());
  EXPECT_TRUE(Tr("select p.price > 3 from p in PART")
                  .type->element()->is_bool());
  EXPECT_TRUE(Tr("select count(s.parts) from s in SUPPLIER")
                  .type->element()->is_int());
  EXPECT_TRUE(Tr("select avg(select p.price from p in PART) "
                 "from s in SUPPLIER")
                  .type->element()->is_double());
}

TEST_F(TranslateTest, QuantifiersTypeCheck) {
  TypedExpr t = Tr(
      "select s.sname from s in SUPPLIER where "
      "exists x in s.parts : exists p in PART : x.pid = p.pid");
  EXPECT_TRUE(t.type->element()->is_string());
}

TEST_F(TranslateTest, SetComparisonOnAttributes) {
  TypedExpr t = Tr(
      "select s.sname from s in SUPPLIER where "
      "s.parts supseteq (select x from t in SUPPLIER, x in t.parts "
      "where t.sname = \"s1\")");
  EXPECT_TRUE(t.type->element()->is_string());
}

TEST_F(TranslateTest, ErrorSetOfSetsComparison) {
  // The un-flattened variant compares { (pid) } with { { (pid) } }: a
  // type error our checker reports (the paper's notation glosses it).
  TrError(
      "select s.sname from s in SUPPLIER where "
      "s.parts supseteq (select t.parts from t in SUPPLIER "
      "where t.sname = \"s1\")");
}

TEST_F(TranslateTest, VariablesShadowTables) {
  // Using the extent name as a variable is legal; inside, it refers to
  // the tuple.
  TypedExpr t = Tr("select PART.pname from PART in PART");
  EXPECT_EQ(t.expr->kind(), ExprKind::kMap);
}

TEST_F(TranslateTest, ErrorUnknownIdentifier) {
  Status st = TrError("select z.a from x in X");
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
  EXPECT_NE(st.message().find("unknown identifier 'z'"), std::string::npos);
}

TEST_F(TranslateTest, ErrorUnknownAttribute) {
  Status st = TrError("select p.nope from p in PART");
  EXPECT_NE(st.message().find("no attribute 'nope'"), std::string::npos);
}

TEST_F(TranslateTest, ErrorNonSetRange) {
  TrError("select x from x in 42");
}

TEST_F(TranslateTest, ErrorNonBooleanWhere) {
  TrError("select p from p in PART where p.price");
}

TEST_F(TranslateTest, ErrorTypeMismatchComparison) {
  TrError("select p from p in PART where p.pname = 3");
  TrError("select p from p in PART where p.price in PART");
}

TEST_F(TranslateTest, ErrorMixedSetLiteral) {
  TrError("select x from x in X where x.a in {1, \"two\"}");
}

TEST_F(TranslateTest, ErrorDuplicateTupleField) {
  TrError("select (a = 1, a = 2) from p in PART");
}

TEST_F(TranslateTest, EmptySetLiteralTypesAsAny) {
  TypedExpr t = Tr("select x from x in X where x.c = {}");
  EXPECT_TRUE(t.type->is_set());
}

TEST_F(TranslateTest, TranslationEvaluates) {
  // End-to-end sanity: the translated tree evaluates without error.
  TypedExpr t = Tr(
      "select s.sname from s in SUPPLIER where "
      "exists x in s.parts : exists p in PART : "
      "x.pid = p.pid and p.color = \"red\"");
  Value v = testutil::EvalExpr(*db_, t.expr);
  EXPECT_TRUE(v.is_set());
}

}  // namespace
}  // namespace n2j
