#include "storage/csv_loader.h"

#include <fstream>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace n2j {
namespace {

class CsvLoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable("P", Type::Tuple({{"name", Type::String()},
                                                  {"price", Type::Int()},
                                                  {"weight", Type::Double()},
                                                  {"avail", Type::Bool()}}))
                    .ok());
  }
  Database db_;
};

TEST_F(CsvLoaderTest, BasicLoad) {
  Result<size_t> n = LoadCsv(&db_, "P",
                             "name,price,weight,avail\n"
                             "bolt,3,0.5,true\n"
                             "nut,2,0.1,false\n");
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 2u);
  const Table* t = db_.FindTable("P");
  ASSERT_EQ(t->size(), 2u);
  EXPECT_EQ(t->rows()[0].FindField("name")->string_value(), "bolt");
  EXPECT_EQ(t->rows()[0].FindField("price")->int_value(), 3);
  EXPECT_DOUBLE_EQ(t->rows()[0].FindField("weight")->double_value(), 0.5);
  EXPECT_EQ(t->rows()[1].FindField("avail")->bool_value(), false);
}

TEST_F(CsvLoaderTest, QuotedFieldsWithDelimitersAndNewlines) {
  Result<size_t> n = LoadCsv(&db_, "P",
                             "name,price,weight,avail\n"
                             "\"bolt, large\",3,0.5,true\n"
                             "\"multi\nline\",1,1.0,false\n"
                             "\"with \"\"quotes\"\"\",2,2.0,true\n");
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 3u);
  const Table* t = db_.FindTable("P");
  EXPECT_EQ(t->rows()[0].FindField("name")->string_value(), "bolt, large");
  EXPECT_EQ(t->rows()[1].FindField("name")->string_value(), "multi\nline");
  EXPECT_EQ(t->rows()[2].FindField("name")->string_value(),
            "with \"quotes\"");
}

TEST_F(CsvLoaderTest, NoHeaderMode) {
  CsvOptions opts;
  opts.has_header = false;
  Result<size_t> n = LoadCsv(&db_, "P", "bolt,3,0.5,true\n", opts);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
}

TEST_F(CsvLoaderTest, CustomDelimiter) {
  CsvOptions opts;
  opts.delimiter = ';';
  Result<size_t> n =
      LoadCsv(&db_, "P", "name;price;weight;avail\nbolt;3;0.5;true\n", opts);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 1u);
}

TEST_F(CsvLoaderTest, CrlfLineEndings) {
  Result<size_t> n = LoadCsv(&db_, "P",
                             "name,price,weight,avail\r\n"
                             "bolt,3,0.5,true\r\n");
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 1u);
}

TEST_F(CsvLoaderTest, ErrorsAreDescriptive) {
  // Wrong header name.
  Result<size_t> bad_header = LoadCsv(&db_, "P",
                                      "nome,price,weight,avail\n");
  ASSERT_FALSE(bad_header.ok());
  EXPECT_NE(bad_header.status().message().find("nome"), std::string::npos);
  // Column count mismatch.
  Result<size_t> bad_count = LoadCsv(&db_, "P",
                                     "name,price,weight,avail\nbolt,3\n");
  ASSERT_FALSE(bad_count.ok());
  // Type coercion failure names record and column.
  Result<size_t> bad_type = LoadCsv(&db_, "P",
                                    "name,price,weight,avail\n"
                                    "bolt,notanumber,0.5,true\n");
  ASSERT_FALSE(bad_type.ok());
  EXPECT_NE(bad_type.status().message().find("price"), std::string::npos);
  // Unknown table.
  EXPECT_FALSE(LoadCsv(&db_, "NOPE", "a\n1\n").ok());
}

TEST_F(CsvLoaderTest, NonAtomicColumnsRejected) {
  ASSERT_TRUE(
      db_.CreateTable("S", Type::Tuple({{"c", Type::Set(Type::Int())}}))
          .ok());
  Result<size_t> r = LoadCsv(&db_, "S", "c\nx\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("non-atomic"), std::string::npos);
}

TEST_F(CsvLoaderTest, EmptyAsNullOption) {
  CsvOptions opts;
  opts.empty_as_null = true;
  Result<size_t> n = LoadCsv(&db_, "P",
                             "name,price,weight,avail\n"
                             "bolt,,0.5,true\n",
                             opts);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_TRUE(db_.FindTable("P")->rows()[0].FindField("price")->is_null());
}

TEST_F(CsvLoaderTest, LoadedDataIsQueryable) {
  ASSERT_TRUE(LoadCsv(&db_, "P",
                      "name,price,weight,avail\n"
                      "bolt,3,0.5,true\n"
                      "nut,2,0.1,false\n"
                      "washer,7,0.2,true\n")
                  .ok());
  ExprPtr q = testutil::TranslateOrDie(
      db_, "select p.name from p in P where p.price > 2 and p.avail");
  Value v = testutil::EvalExpr(db_, q);
  EXPECT_EQ(v, Value::Set({Value::String("bolt"), Value::String("washer")}));
}

TEST_F(CsvLoaderTest, FileLoading) {
  std::string path = ::testing::TempDir() + "/n2j_csv_test.csv";
  {
    std::ofstream out(path);
    out << "name,price,weight,avail\nbolt,3,0.5,true\n";
  }
  Result<size_t> n = LoadCsvFile(&db_, "P", path);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 1u);
  EXPECT_FALSE(LoadCsvFile(&db_, "P", "/nonexistent/x.csv").ok());
}

}  // namespace
}  // namespace n2j
