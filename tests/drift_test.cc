// Plan-drift monitoring (ISSUE 10): the seeded stale-stats scenario.
// Analyze, run queries (no drift) — Append *without* Analyze, run more
// (the extent must be flagged: the stats snapshot prices a table that
// has since grown) — re-Analyze (the flag must clear immediately: the
// snapshot version bump resets the extent's rolling window).

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "adl/value.h"
#include "core/engine.h"
#include "obs/drift.h"
#include "obs/querylog.h"
#include "stats/stats.h"
#include "storage/datagen.h"

namespace n2j {
namespace obs {
namespace {

std::unique_ptr<Database> MakeXy(int n) {
  auto db = std::make_unique<Database>();
  XYConfig config;
  config.seed = 11;
  config.x_rows = n;
  config.y_rows = n;
  N2J_CHECK(AddRandomXY(db.get(), config).ok());
  return db;
}

ExprPtr ScanY() {
  return Expr::Select("y",
                      Expr::Eq(Expr::Access(Expr::Var("y"), "a"),
                               Expr::Const(Value::Int(0))),
                      Expr::Table("Y"));
}

void AppendYRows(Database* db, int count) {
  for (int i = 0; i < count; ++i) {
    N2J_CHECK(db->Insert("Y", Value::Tuple({Field("a", Value::Int(1)),
                                            Field("e", Value::Int(i))}))
                  .ok());
  }
}

const ExtentDrift* FindY(const PlanDriftReport& report) {
  for (const ExtentDrift& e : report.extents) {
    if (e.extent == "Y") return &e;
  }
  return nullptr;
}

TEST(DriftMonitor, StaleStatsFlagAndClearOnReanalyze) {
  DriftMonitor::Global().Clear();
  std::unique_ptr<Database> db = MakeXy(50);
  QueryEngine engine(db.get());
  ExprPtr plan = ScanY();

  // Phase 1: fresh statistics — queries observe q = 1.0, nothing flags.
  db->stats().Analyze(*db);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(engine.RunAdl(plan).ok());
  {
    PlanDriftReport report = DriftMonitor::Global().Report();
    const ExtentDrift* y = FindY(report);
    ASSERT_NE(y, nullptr);
    EXPECT_GE(y->samples, 3u);
    EXPECT_DOUBLE_EQ(y->max_q, 1.0);
    EXPECT_FALSE(y->flagged);
    EXPECT_FALSE(report.any_flagged);
  }

  // Phase 2: the table triples behind the catalog's back. Every query
  // now observes q = 150/50 = 3.0 > threshold; once a majority of the
  // window exceeds it, Y is flagged.
  // Six stale observations against the four fresh ones in the window:
  // 6/10 > 50%, a strict majority.
  AppendYRows(db.get(), 100);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(engine.RunAdl(plan).ok());
  {
    PlanDriftReport report = DriftMonitor::Global().Report();
    const ExtentDrift* y = FindY(report);
    ASSERT_NE(y, nullptr);
    EXPECT_DOUBLE_EQ(y->max_q, 3.0);
    EXPECT_TRUE(y->flagged) << report.ToString();
    EXPECT_TRUE(report.any_flagged);
    // The report names the flagged extent.
    EXPECT_NE(report.ToString().find("DRIFT"), std::string::npos);
  }

  // Phase 3: re-Analyze publishes a fresh snapshot (new version). The
  // very next observation resets Y's window, so the flag clears without
  // waiting for old samples to age out.
  db->stats().Analyze(*db);
  ASSERT_TRUE(engine.RunAdl(plan).ok());
  {
    PlanDriftReport report = DriftMonitor::Global().Report();
    const ExtentDrift* y = FindY(report);
    ASSERT_NE(y, nullptr);
    EXPECT_EQ(y->samples, 1u);
    EXPECT_DOUBLE_EQ(y->max_q, 1.0);
    EXPECT_FALSE(y->flagged) << report.ToString();
    EXPECT_FALSE(report.any_flagged);
  }
}

TEST(DriftMonitor, UnanalyzedExtentsNeverObserve) {
  // Without a cached snapshot there is nothing to drift against: the
  // recorder's Peek returns null and the monitor stays empty — drift
  // detection must not force stats collection as a side effect.
  DriftMonitor::Global().Clear();
  std::unique_ptr<Database> db = MakeXy(10);
  QueryEngine engine(db.get());
  ASSERT_TRUE(engine.RunAdl(ScanY()).ok());
  PlanDriftReport report = DriftMonitor::Global().Report();
  EXPECT_EQ(report.extents.size(), 0u);
  EXPECT_FALSE(report.any_flagged);
  // And the recorder's extent audit is likewise empty.
  std::vector<QueryLogRecord> last = QueryLog::Global().Snapshot(1);
  ASSERT_EQ(last.size(), 1u);
  EXPECT_TRUE(last[0].extents.empty());
}

TEST(DriftMonitor, WindowIsBounded) {
  DriftMonitor monitor(DriftOptions{2.0, 4, 3});
  for (int i = 0; i < 100; ++i) monitor.Observe("T", 1, 10.0);
  PlanDriftReport report = monitor.Report();
  ASSERT_EQ(report.extents.size(), 1u);
  EXPECT_EQ(report.extents[0].samples, 4u);
  EXPECT_TRUE(report.extents[0].flagged);
  monitor.Clear();
  EXPECT_EQ(monitor.Report().extents.size(), 0u);
}

TEST(DriftMonitor, QErrorClampsAndIsSymmetric) {
  EXPECT_DOUBLE_EQ(QError(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(QError(10, 5), 2.0);
  EXPECT_DOUBLE_EQ(QError(5, 10), 2.0);
  // Zeros clamp to 1 instead of dividing.
  EXPECT_DOUBLE_EQ(QError(0, 100), 100.0);
  EXPECT_DOUBLE_EQ(QError(100, 0), 100.0);
  EXPECT_DOUBLE_EQ(QError(0, 0), 1.0);
}

}  // namespace
}  // namespace obs
}  // namespace n2j
