// The materialize operator / assembly access algorithm of [BlMG93]
// (Section 6.2) over the paged object store.

#include "exec/materialize.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/datagen.h"

namespace n2j {
namespace {

class MaterializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SupplierPartConfig config;
    config.seed = 5;
    config.num_parts = 64;
    config.num_suppliers = 0;
    db_ = MakeSupplierPartDatabase(config);

    // A reference table with randomly-ordered pointers into PART.
    Rng rng(99);
    std::vector<Value> rows;
    const ClassDef* part = db_->schema().FindClass("Part");
    for (int i = 0; i < 200; ++i) {
      Oid oid = MakeOid(part->class_id,
                        static_cast<uint64_t>(rng.Uniform(0, 63)));
      rows.push_back(Value::Tuple({Field("i", Value::Int(i)),
                                   Field("ref", Value::MakeOidValue(oid))}));
    }
    refs_ = Value::Set(std::move(rows));
  }

  std::unique_ptr<Database> db_;
  Value refs_;
};

TEST_F(MaterializeTest, NaiveAndAssemblyProduceTheSameResult) {
  Result<Value> naive = Materialize(*db_, refs_, "ref", "obj",
                                    MaterializeStrategy::kNaive);
  Result<Value> assembly = Materialize(*db_, refs_, "ref", "obj",
                                       MaterializeStrategy::kAssembly);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  ASSERT_TRUE(assembly.ok()) << assembly.status().ToString();
  EXPECT_EQ(*naive, *assembly);
  // Every tuple gained the object.
  for (const Value& t : naive->elements()) {
    const Value* obj = t.FindField("obj");
    ASSERT_NE(obj, nullptr);
    EXPECT_NE(obj->FindField("pname"), nullptr);
  }
}

TEST_F(MaterializeTest, AssemblyFaultsEachPageAtMostOncePerScan) {
  // Small cache, random access order: naive dereferencing thrashes,
  // assembly (oid-sorted) touches each page once.
  db_->store().set_cache_pages(2);

  db_->store().ResetStats();
  ASSERT_TRUE(Materialize(*db_, refs_, "ref", "obj",
                          MaterializeStrategy::kNaive)
                  .ok());
  uint64_t naive_misses = db_->store().stats().page_misses;

  db_->store().ResetStats();
  ASSERT_TRUE(Materialize(*db_, refs_, "ref", "obj",
                          MaterializeStrategy::kAssembly)
                  .ok());
  uint64_t assembly_misses = db_->store().stats().page_misses;

  // 64 parts, page_size 64 → 1 page: trivial. Rebuild with small pages.
  // (The default ObjectStore page size is 64; this database has exactly
  // one part page, so force the interesting case via a fresh store.)
  EXPECT_LE(assembly_misses, naive_misses);
}

TEST_F(MaterializeTest, AssemblyBeatsNaiveOnSmallPages) {
  // A store with 8 objects per page and a 2-page cache.
  SupplierPartConfig config;
  config.num_parts = 128;
  config.num_suppliers = 0;
  auto db = MakeSupplierPartDatabase(config);
  // Rebuild the object store cost model with small pages by copying the
  // objects into a new database is heavyweight; instead adjust cache and
  // rely on the 64-per-page layout with 128 parts = 2 pages... still too
  // coarse. Use direct store stats over many random scans instead.
  db->store().set_cache_pages(1);
  Rng rng(7);
  const ClassDef* part = db->schema().FindClass("Part");
  std::vector<Value> rows;
  for (int i = 0; i < 300; ++i) {
    Oid oid = MakeOid(part->class_id,
                      static_cast<uint64_t>(rng.Uniform(0, 127)));
    rows.push_back(Value::Tuple({Field("i", Value::Int(i)),
                                 Field("ref", Value::MakeOidValue(oid))}));
  }
  Value refs = Value::Set(std::move(rows));

  db->store().ResetStats();
  ASSERT_TRUE(
      Materialize(*db, refs, "ref", "obj", MaterializeStrategy::kNaive)
          .ok());
  uint64_t naive_misses = db->store().stats().page_misses;

  db->store().ResetStats();
  ASSERT_TRUE(
      Materialize(*db, refs, "ref", "obj", MaterializeStrategy::kAssembly)
          .ok());
  uint64_t assembly_misses = db->store().stats().page_misses;

  EXPECT_LT(assembly_misses, naive_misses);
  EXPECT_EQ(assembly_misses, 2u);  // one miss per page
}

TEST_F(MaterializeTest, DanglingReferences) {
  const ClassDef* part = db_->schema().FindClass("Part");
  Value dangling = Value::Set(
      {Value::Tuple({Field("i", Value::Int(0)),
                     Field("ref", Value::MakeOidValue(
                                      MakeOid(part->class_id, 9999)))})});
  Result<Value> strict = Materialize(*db_, dangling, "ref", "obj",
                                     MaterializeStrategy::kNaive);
  EXPECT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kNotFound);
  Result<Value> dropped =
      Materialize(*db_, dangling, "ref", "obj",
                  MaterializeStrategy::kAssembly, /*drop_dangling=*/true);
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(dropped->set_size(), 0u);
}

TEST_F(MaterializeTest, InputValidation) {
  EXPECT_FALSE(Materialize(*db_, Value::Int(1), "ref", "obj",
                           MaterializeStrategy::kNaive)
                   .ok());
  EXPECT_FALSE(Materialize(*db_, refs_, "nope", "obj",
                           MaterializeStrategy::kNaive)
                   .ok());
}

}  // namespace
}  // namespace n2j
