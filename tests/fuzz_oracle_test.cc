// The differential oracle's contract: every config cell in the default
// matrix must agree with naive nested-loop evaluation, while the
// deliberately-unsafe grouping cell must NOT — it re-applies the paper's
// Figure 2 Complex Object rewrite without the safety check, which both
// demonstrates the bug and proves the oracle can detect a miscompile.

#include <gtest/gtest.h>

#include "fuzz/fuzzer.h"
#include "fuzz/oracle.h"
#include "storage/database.h"

namespace n2j {
namespace fuzz {
namespace {

TEST(FuzzOracleTest, DefaultMatrixHasAtLeastEightConfigs) {
  EXPECT_GE(DefaultConfigMatrix().size(), 8u);
}

TEST(FuzzOracleTest, DefaultMatrixCleanOverManyRounds) {
  FuzzOptions options;
  options.seed = 101;
  options.rounds = 150;
  options.shrink_failures = false;
  FuzzSummary summary = RunFuzzer(options, nullptr, nullptr);
  EXPECT_TRUE(summary.Clean()) << summary.ToString();
  EXPECT_EQ(summary.rounds_run, 150);
  EXPECT_EQ(summary.oracle_ok + summary.skipped_runtime_error,
            summary.rounds_run);
}

TEST(FuzzOracleTest, UnsafeGroupingReproducesTheComplexObjectBug) {
  FuzzOptions options;
  options.seed = 1;
  options.rounds = 60;
  options.matrix = UnsafeGroupingMatrix();
  std::vector<FuzzFailure> failures;
  FuzzSummary summary = RunFuzzer(options, &failures, nullptr);
  ASSERT_GE(summary.mismatches, 1) << summary.ToString();
  EXPECT_EQ(failures[0].failing_config, "force-grouping-unsafe");
  // The shrinker must hand back a reproduction no larger than the
  // original (its acceptance predicate re-runs the oracle, so it still
  // fails by construction).
  EXPECT_FALSE(failures[0].shrunk_query.empty());
  EXPECT_LE(failures[0].shrunk_query.size(), failures[0].query.size());
  EXPECT_FALSE(failures[0].shrunk_db.empty());
}

TEST(FuzzOracleTest, FailuresAreDeterministicInTheSeed) {
  FuzzOptions options;
  options.seed = 1;
  options.rounds = 10;
  options.start_round = 20;  // round 26 of seed 1 is a known mismatch
  options.matrix = UnsafeGroupingMatrix();
  std::vector<FuzzFailure> a;
  std::vector<FuzzFailure> b;
  RunFuzzer(options, &a, nullptr);
  RunFuzzer(options, &b, nullptr);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GE(a.size(), 1u);
  EXPECT_EQ(a[0].round, b[0].round);
  EXPECT_EQ(a[0].query, b[0].query);
  EXPECT_EQ(a[0].shrunk_query, b[0].shrunk_query);
  EXPECT_EQ(a[0].shrunk_db, b[0].shrunk_db);
}

TEST(FuzzOracleTest, GarbageQueryIsAFrontEndError) {
  Database db;
  OracleReport r =
      RunDifferentialOracle(db, "select (", DefaultConfigMatrix());
  EXPECT_EQ(r.status, OracleStatus::kFrontEndError);
  EXPECT_FALSE(r.detail.empty());
}

}  // namespace
}  // namespace fuzz
}  // namespace n2j
