// Vectorized batch execution in the shredded backend (ISSUE 8
// tentpole): engagement of the fused pipeline, bit-equality against the
// scalar engines across batch-boundary sizes, error parity (first-error
// order must survive batching), per-node fallback accounting, batch
// hash-join agreement, and serial-vs-parallel stats determinism.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "adl/printer.h"
#include "shred/shred.h"
#include "storage/datagen.h"
#include "tests/test_util.h"

namespace n2j {
namespace {

using testutil::SmallSupplierDb;
using testutil::TranslateOrDie;

EvalOptions VecOpts(bool vectorized, int batch = 1024) {
  EvalOptions o;
  o.backend = Backend::kShredded;
  o.vectorized = vectorized;
  o.vector_batch_size = batch;
  return o;
}

Result<Value> Interp(const Database& db, const ExprPtr& e) {
  EvalOptions o;
  o.backend = Backend::kNested;
  EvalStats stats;
  return shred::EvalWithBackend(db, e, o, &stats);
}

// The erroring-row fixture: T(a int) with a = 1..12, so `t.a - 5`
// crosses zero at the fifth canonical row — past the first batch for
// small batch sizes.
std::unique_ptr<Database> DivTrapDb() {
  auto db = std::make_unique<Database>();
  N2J_CHECK(db->CreateTable("T", Type::Tuple({{"a", Type::Int()}})).ok());
  for (int i = 1; i <= 12; ++i) {
    N2J_CHECK(db->Insert("T", Value::Tuple({Field("a", Value::Int(i))})).ok());
  }
  return db;
}

TEST(Vectorized, EngagesOnPaperShapesAndMatchesScalar) {
  std::unique_ptr<Database> db = SmallSupplierDb();
  const char* queries[] = {
      "select (sname = s.sname, ps = select z.pid from z in s.parts) "
      "from s in SUPPLIER",
      "select (a = x.pname, b = y.pname) from x in PART, y in PART "
      "where x.price = y.price",
      "select z from s in SUPPLIER, z in s.parts",
      "select p.pname from p in PART where p.color = \"red\"",
  };
  for (const char* q : queries) {
    ExprPtr e = TranslateOrDie(*db, q);
    Result<Value> reference = Interp(*db, e);
    ASSERT_TRUE(reference.ok()) << q;

    EvalStats on_stats, off_stats;
    Result<Value> on = shred::EvalWithBackend(*db, e, VecOpts(true),
                                              &on_stats);
    Result<Value> off = shred::EvalWithBackend(*db, e, VecOpts(false),
                                               &off_stats);
    ASSERT_TRUE(on.ok()) << q << "\n" << on.status().ToString();
    ASSERT_TRUE(off.ok()) << q;
    EXPECT_EQ(*reference, *on) << q;
    EXPECT_EQ(*reference, *off) << q;

    // The pipeline really ran — and the scalar run never touched it.
    EXPECT_GT(on_stats.vec_pipelines, 0u) << q;
    EXPECT_GT(on_stats.vec_batches, 0u) << q;
    EXPECT_EQ(on_stats.vec_fallbacks, 0u) << q;
    EXPECT_EQ(off_stats.vec_pipelines, 0u) << q;
    EXPECT_EQ(off_stats.vec_batches, 0u) << q;
    EXPECT_EQ(off_stats.vec_fallbacks, 0u) << q;
  }
}

TEST(Vectorized, BatchBoundarySizesAgreeBitForBit) {
  // 1300 parts: a whole-extent scan crosses the 1024 boundary, and the
  // self-join probes split across several batches.
  SupplierPartConfig sp;
  sp.seed = 11;
  sp.num_parts = 1300;
  sp.num_suppliers = 60;
  sp.parts_per_supplier = 4;
  sp.match_fraction = 0.9;
  std::unique_ptr<Database> db = MakeSupplierPartDatabase(sp);
  const char* queries[] = {
      "select z from s in SUPPLIER, z in s.parts",
      "select (a = x.pname, b = y.pname) from x in PART, y in PART "
      "where x.price = y.price and x.price < 500",
  };
  for (const char* q : queries) {
    ExprPtr e = TranslateOrDie(*db, q);
    EvalStats scalar_stats;
    Result<Value> scalar = shred::EvalWithBackend(*db, e, VecOpts(false),
                                                  &scalar_stats);
    ASSERT_TRUE(scalar.ok()) << q;
    // 0 exercises the documented clamp to 1.
    for (int batch : {0, 1, 3, 1023, 1024, 1025}) {
      EvalStats stats;
      Result<Value> v = shred::EvalWithBackend(*db, e, VecOpts(true, batch),
                                               &stats);
      ASSERT_TRUE(v.ok()) << q << " batch=" << batch;
      EXPECT_EQ(*scalar, *v) << q << " batch=" << batch;
      EXPECT_GT(stats.vec_pipelines, 0u) << q << " batch=" << batch;
      EXPECT_EQ(stats.vec_fallbacks, 0u) << q << " batch=" << batch;
    }
  }
}

TEST(Vectorized, EmptyExtentAndFullyFilteredBatches) {
  auto db = std::make_unique<Database>();
  ASSERT_TRUE(db->CreateTable("E", Type::Tuple({{"a", Type::Int()}})).ok());
  ExprPtr over_empty = TranslateOrDie(*db, "select x.a from x in E");
  EvalStats stats;
  Result<Value> v = shred::EvalWithBackend(*db, over_empty, VecOpts(true),
                                           &stats);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::EmptySet());
  EXPECT_EQ(stats.vec_fallbacks, 0u);

  std::unique_ptr<Database> sp = SmallSupplierDb();
  ExprPtr filtered = TranslateOrDie(
      *sp, "select p.pname from p in PART where p.price > 999999");
  for (int batch : {1, 7, 1024}) {
    EvalStats fs;
    Result<Value> fv = shred::EvalWithBackend(*sp, filtered,
                                              VecOpts(true, batch), &fs);
    ASSERT_TRUE(fv.ok());
    EXPECT_EQ(*fv, Value::EmptySet()) << "batch=" << batch;
    EXPECT_GT(fs.vec_pipelines, 0u);
  }
}

TEST(Vectorized, ErrorParityAcrossBatchBoundaries) {
  std::unique_ptr<Database> db = DivTrapDb();
  const char* queries[] = {
      // Error in the output stage (row 5 of 12).
      "select 10 / (t.a - 5) from t in T",
      // Error in the fused range predicate.
      "select t.a from t in T where 10 / (t.a - 5) > 0",
  };
  for (const char* q : queries) {
    ExprPtr e = TranslateOrDie(*db, q);
    Result<Value> reference = Interp(*db, e);
    ASSERT_FALSE(reference.ok()) << q;
    for (int batch : {1, 3, 1024}) {
      EvalStats stats;
      Result<Value> v = shred::EvalWithBackend(*db, e, VecOpts(true, batch),
                                               &stats);
      ASSERT_FALSE(v.ok()) << q << " batch=" << batch;
      // Exact first-error semantics: the mid-batch bail reruns the node
      // row-wise, so the surfaced error is the interpreter's.
      EXPECT_EQ(v.status().ToString(), reference.status().ToString())
          << q << " batch=" << batch;
      EXPECT_GT(stats.vec_fallbacks, 0u) << q << " batch=" << batch;
    }
  }
}

TEST(Vectorized, ShortCircuitSkipsErroringLanes) {
  // The And chain diverts the a = 5 lane before the division runs —
  // batched short-circuit must preserve that, at every batch size.
  std::unique_ptr<Database> db = DivTrapDb();
  ExprPtr e = TranslateOrDie(
      *db, "select t.a from t in T where t.a <> 5 and 10 / (t.a - 5) > 0");
  Result<Value> reference = Interp(*db, e);
  ASSERT_TRUE(reference.ok());
  for (int batch : {1, 3, 1024}) {
    EvalStats stats;
    Result<Value> v = shred::EvalWithBackend(*db, e, VecOpts(true, batch),
                                             &stats);
    ASSERT_TRUE(v.ok()) << "batch=" << batch << "\n"
                        << v.status().ToString();
    EXPECT_EQ(*reference, *v) << "batch=" << batch;
    EXPECT_EQ(stats.vec_fallbacks, 0u);
  }
}

TEST(Vectorized, FallbackWhenAnOutputRefusesToBatchCompile) {
  // A set-iterator inside a *scalar* output (union of comprehensions is
  // not comprehension-shaped, so it does not become a child node) is a
  // form the compiler refuses — the node must fall back row-wise, count
  // it, and still produce the right answer.
  std::unique_ptr<Database> db = SmallSupplierDb();
  ExprPtr e = TranslateOrDie(
      *db,
      "select (sname = s.sname, "
      "        ids = (select z.pid from z in s.parts) union "
      "              (select z.pid from z in s.parts)) "
      "from s in SUPPLIER");
  Result<Value> reference = Interp(*db, e);
  ASSERT_TRUE(reference.ok());
  EvalStats stats;
  Result<Value> v = shred::EvalWithBackend(*db, e, VecOpts(true), &stats);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*reference, *v);
  EXPECT_GT(stats.vec_fallbacks, 0u);
}

TEST(Vectorized, BatchHashJoinAgreesAndSortMergeStaysScalar) {
  std::unique_ptr<Database> db = SmallSupplierDb();
  ExprPtr e = TranslateOrDie(
      *db,
      "select (a = x.pname, b = y.pname) from x in PART, y in PART "
      "where x.price = y.price and x.pid <> y.pid");
  Result<Value> reference = Interp(*db, e);
  ASSERT_TRUE(reference.ok());

  EvalOptions hash = VecOpts(true);
  EvalStats hash_stats;
  Result<Value> hv = shred::EvalWithBackend(*db, e, hash, &hash_stats);
  ASSERT_TRUE(hv.ok());
  EXPECT_EQ(*reference, *hv);
  EXPECT_GT(hash_stats.joins_hash, 0u);
  EXPECT_GT(hash_stats.hash_probes, 0u);
  EXPECT_EQ(hash_stats.vec_fallbacks, 0u);

  // Sort-merge is a scalar-engine feature; the node refuses and the
  // fallback keeps its accounting intact.
  EvalOptions sm = VecOpts(true);
  sm.join_algorithm = JoinAlgorithm::kSortMerge;
  EvalStats sm_stats;
  Result<Value> sv = shred::EvalWithBackend(*db, e, sm, &sm_stats);
  ASSERT_TRUE(sv.ok());
  EXPECT_EQ(*reference, *sv);
  EXPECT_GT(sm_stats.joins_sortmerge, 0u);
  EXPECT_GT(sm_stats.vec_fallbacks, 0u);
}

TEST(Vectorized, SerialAndParallelStatsMatchExactly) {
  std::unique_ptr<Database> db = SmallSupplierDb();
  const char* queries[] = {
      "select (sname = s.sname, ps = select z.pid from z in s.parts) "
      "from s in SUPPLIER",
      "select (a = x.pname, b = y.pname) from x in PART, y in PART "
      "where x.price = y.price",
  };
  for (const char* q : queries) {
    ExprPtr e = TranslateOrDie(*db, q);
    EvalOptions serial = VecOpts(true);
    serial.num_threads = 1;
    EvalOptions parallel = VecOpts(true);
    parallel.num_threads = 4;
    EvalStats s1, s4;
    Result<Value> v1 = shred::EvalWithBackend(*db, e, serial, &s1);
    Result<Value> v4 = shred::EvalWithBackend(*db, e, parallel, &s4);
    ASSERT_TRUE(v1.ok() && v4.ok()) << q;
    EXPECT_EQ(*v1, *v4) << q;
    // The pipeline's gates and counters are thread-count-independent;
    // the whole counter struct must agree, not just the vec_* fields.
    EXPECT_EQ(s1.Compact(), s4.Compact()) << q;
  }
}

TEST(Vectorized, MorselParallelMatrixAgreesBitForBit) {
  // threads {1,2,4} x batch {3,1024} over data big enough that every
  // shape really splits into multiple morsels: CSR flattening, a batch
  // hash self-join, and (on the small db) a non-equi NL join whose
  // candidate windows exercise the sub-batch unit splitter.
  SupplierPartConfig sp;
  sp.seed = 11;
  sp.num_parts = 1300;
  sp.num_suppliers = 60;
  sp.parts_per_supplier = 4;
  sp.match_fraction = 0.9;
  std::unique_ptr<Database> big = MakeSupplierPartDatabase(sp);
  std::unique_ptr<Database> small = SmallSupplierDb();
  struct Case {
    const Database* db;
    const char* q;
  } cases[] = {
      {big.get(), "select z from s in SUPPLIER, z in s.parts"},
      {big.get(),
       "select (a = x.pname, b = y.pname) from x in PART, y in PART "
       "where x.price = y.price and x.price < 500"},
      {small.get(),
       // Non-equi predicate: no hash build, so the root range runs as a
       // nested-loop scan whose flattened candidate space is windowed.
       "select (a = x.pname, b = y.pname) from x in PART, y in PART "
       "where x.price < y.price"},
  };
  for (const Case& c : cases) {
    ExprPtr e = TranslateOrDie(*c.db, c.q);
    for (int batch : {3, 1024}) {
      EvalOptions serial = VecOpts(true, batch);
      serial.num_threads = 1;
      EvalStats s1;
      Result<Value> v1 = shred::EvalWithBackend(*c.db, e, serial, &s1);
      ASSERT_TRUE(v1.ok()) << c.q << " batch=" << batch;
      for (int nt : {2, 4}) {
        EvalOptions mt = VecOpts(true, batch);
        mt.num_threads = nt;
        EvalStats sn;
        Result<Value> vn = shred::EvalWithBackend(*c.db, e, mt, &sn);
        ASSERT_TRUE(vn.ok())
            << c.q << " batch=" << batch << " nt=" << nt << "\n"
            << vn.status().ToString();
        EXPECT_EQ(*v1, *vn) << c.q << " batch=" << batch << " nt=" << nt;
        // Successful queries do exactly the same work at every thread
        // count — the morsels partition the same row space the serial
        // loop walks.
        EXPECT_EQ(s1.Compact(), sn.Compact())
            << c.q << " batch=" << batch << " nt=" << nt;
      }
    }
  }
}

TEST(Vectorized, ParallelFirstErrorParityAcrossMorselBoundaries) {
  // The fifth row errors. Under morsel parallelism a later morsel may
  // finish first; the surfaced error must still be the row-order first
  // one (the interpreter's), for both engines. Error-path *stats* are
  // deliberately not compared across thread counts: workers complete
  // their in-flight morsels, so the merged counters can exceed the
  // serial engine's stop-at-first-error partials.
  std::unique_ptr<Database> db = DivTrapDb();
  const char* queries[] = {
      "select 10 / (t.a - 5) from t in T",
      "select t.a from t in T where 10 / (t.a - 5) > 0",
  };
  for (const char* q : queries) {
    ExprPtr e = TranslateOrDie(*db, q);
    Result<Value> reference = Interp(*db, e);
    ASSERT_FALSE(reference.ok()) << q;
    for (int nt : {2, 4}) {
      for (int batch : {3, 1024}) {
        EvalOptions vec = VecOpts(true, batch);
        vec.num_threads = nt;
        EvalStats vs;
        Result<Value> v = shred::EvalWithBackend(*db, e, vec, &vs);
        ASSERT_FALSE(v.ok()) << q << " nt=" << nt << " batch=" << batch;
        EXPECT_EQ(v.status().ToString(), reference.status().ToString())
            << q << " nt=" << nt << " batch=" << batch;
      }
      EvalOptions scalar = VecOpts(false);
      scalar.num_threads = nt;
      EvalStats ss;
      Result<Value> s = shred::EvalWithBackend(*db, e, scalar, &ss);
      ASSERT_FALSE(s.ok()) << q << " nt=" << nt;
      EXPECT_EQ(s.status().ToString(), reference.status().ToString())
          << q << " nt=" << nt;
    }
  }
}

TEST(Vectorized, PlanDescribeMarksVectorizableNodes) {
  std::unique_ptr<Database> db = SmallSupplierDb();
  ExprPtr e = TranslateOrDie(
      *db, "select p.pname from p in PART where p.color = \"red\"");
  std::string plan_text;
  EvalStats stats;
  Result<Value> v = shred::EvalWithBackend(*db, e, VecOpts(true), &stats,
                                           &plan_text);
  ASSERT_TRUE(v.ok());
  EXPECT_NE(plan_text.find("[vec]"), std::string::npos) << plan_text;
}

TEST(Vectorized, CountersSurfaceInStatsText) {
  std::unique_ptr<Database> db = SmallSupplierDb();
  ExprPtr e = TranslateOrDie(*db, "select p.pname from p in PART");
  EvalStats stats;
  ASSERT_TRUE(shred::EvalWithBackend(*db, e, VecOpts(true), &stats).ok());
  EXPECT_NE(stats.ToString().find("vec_batches"), std::string::npos);
  EXPECT_NE(stats.ToString().find("vec_pipelines"), std::string::npos);
  EXPECT_NE(stats.Compact().find("v_batch="), std::string::npos);
}

}  // namespace
}  // namespace n2j
