// Rule 1 (Section 5.2.1): unnesting quantifier expressions into semijoin
// and antijoin operations, including range merging and the quantifier
// exchange heuristic (Rewriting Examples 1-3).

#include <gtest/gtest.h>

#include "adl/analysis.h"
#include "tests/test_util.h"

namespace n2j {
namespace {

using testutil::CheckEquivalence;
using testutil::HasNestedBaseTable;
using testutil::TranslateOrDie;

class Rule1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testutil::SmallSupplierDb();
    ASSERT_TRUE(AddRandomXY(db_.get(), XYConfig()).ok());
  }
  std::unique_ptr<Database> db_;
};

bool ContainsKind(const ExprPtr& e, ExprKind kind) {
  bool found = false;
  VisitPreOrder(e, [&](const ExprPtr& n) {
    if (n->kind() == kind) found = true;
  });
  return found;
}

TEST_F(Rule1Test, ExistentialSubqueryBecomesSemiJoin) {
  // σ[x : ∃y ∈ Y · y.a = x.a](X) ⇒ X ⋉ Y.
  ExprPtr e = Expr::Select(
      "x",
      Expr::Quant(QuantKind::kExists, "y", Expr::Table("Y"),
                  Expr::Eq(Expr::Access(Expr::Var("y"), "a"),
                           Expr::Access(Expr::Var("x"), "a"))),
      Expr::Table("X"));
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("Rule1-SemiJoin")) << r.TraceToString();
  EXPECT_EQ(r.expr->kind(), ExprKind::kSemiJoin);
  EXPECT_FALSE(HasNestedBaseTable(r.expr));
}

TEST_F(Rule1Test, NegatedExistentialBecomesAntiJoin) {
  ExprPtr e = Expr::Select(
      "x",
      Expr::Not(Expr::Quant(QuantKind::kExists, "y", Expr::Table("Y"),
                            Expr::Eq(Expr::Access(Expr::Var("y"), "a"),
                                     Expr::Access(Expr::Var("x"), "a")))),
      Expr::Table("X"));
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("Rule1-AntiJoin")) << r.TraceToString();
  EXPECT_EQ(r.expr->kind(), ExprKind::kAntiJoin);
}

TEST_F(Rule1Test, UniversalQuantifierBecomesAntiJoin) {
  // σ[x : ∀y∈Y · y.a <> x.a](X) ≡ X ▷ Y on equality.
  ExprPtr e = Expr::Select(
      "x",
      Expr::Quant(QuantKind::kForall, "y", Expr::Table("Y"),
                  Expr::Bin(BinOp::kNe, Expr::Access(Expr::Var("y"), "a"),
                            Expr::Access(Expr::Var("x"), "a"))),
      Expr::Table("X"));
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_EQ(r.expr->kind(), ExprKind::kAntiJoin);
}

TEST_F(Rule1Test, RangeSelectionMergedBeforeUnnesting) {
  // Rewriting Example 1: σ[x : x.c ∈ σ[y:q](Y)](X) — via OOSQL.
  ExprPtr e = TranslateOrDie(
      *db_,
      "select x from x in X where exists y in "
      "(select y2 from y2 in Y where y2.e > x.a) : y.a = x.a");
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("MergeRange-Select") ||
              r.Fired("Simplify-SelectFusion"))
      << r.TraceToString();
  EXPECT_TRUE(r.Fired("Rule1-SemiJoin")) << r.TraceToString();
  EXPECT_FALSE(HasNestedBaseTable(r.expr));
}

TEST_F(Rule1Test, MembershipRewriting) {
  // Rewriting Example 1 exactly: x.a ∈ (select y.a from y in Y ...).
  ExprPtr e = TranslateOrDie(
      *db_,
      "select x from x in X where x.a in "
      "(select y.e from y in Y where y.a = x.a)");
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("Table1-SetCmpToQuantifier")) << r.TraceToString();
  EXPECT_TRUE(r.Fired("Rule1-SemiJoin")) << r.TraceToString();
  EXPECT_FALSE(HasNestedBaseTable(r.expr));
}

TEST_F(Rule1Test, SetInclusionViaAntijoin) {
  // Rewriting Example 2: σ[x : Y' ⊆ x.c](X) ⇒ X ▷ Y. Our X.c holds
  // unary (d) tuples, so compare with selected unary tuples of Y.
  ExprPtr e = TranslateOrDie(
      *db_,
      "select x from x in X where "
      "(select (d = y.e) from y in Y where y.a = x.a) subseteq x.c");
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("Table1-SetCmpToQuantifier(mirrored)"))
      << r.TraceToString();
  EXPECT_TRUE(r.Fired("Rule1-AntiJoin")) << r.TraceToString();
  EXPECT_FALSE(HasNestedBaseTable(r.expr));
}

TEST_F(Rule1Test, ExchangeQuantifiersExample3) {
  // Rewriting Example 3: ∀z∈x.c · ∀w∈Y' · φ with a *correlated* Y' —
  // exchanging the universal quantifiers moves the base-table
  // quantification leftmost; ∀-elimination and range merging then yield
  // an antijoin.
  ExprPtr yprime = Expr::Map(
      "y", Expr::Access(Expr::Var("y"), "e"),
      Expr::Select("y",
                   Expr::Eq(Expr::Access(Expr::Var("y"), "a"),
                            Expr::Access(Expr::Var("x"), "a")),
                   Expr::Table("Y")));
  // ∀z ∈ x.c · ∀w ∈ Y' · w >= z.d
  ExprPtr pred = Expr::Quant(
      QuantKind::kForall, "z", Expr::Access(Expr::Var("x"), "c"),
      Expr::Quant(QuantKind::kForall, "w", yprime,
                  Expr::Bin(BinOp::kGe, Expr::Var("w"),
                            Expr::Access(Expr::Var("z"), "d"))));
  ExprPtr e = Expr::Select("x", pred, Expr::Table("X"));
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("ExchangeQuantifiers")) << r.TraceToString();
  EXPECT_TRUE(r.Fired("Rule1-AntiJoin")) << r.TraceToString();
  EXPECT_FALSE(HasNestedBaseTable(r.expr));
}

TEST_F(Rule1Test, ConjunctionUnnestsPerConjunct) {
  // Two quantifier conjuncts plus a scalar one: both quantifiers become
  // joins; the scalar survives as a residual selection.
  ExprPtr e = TranslateOrDie(
      *db_,
      "select x from x in X where "
      "(exists y in Y : y.a = x.a) and "
      "(not exists w in Y : w.e = x.a) and x.a >= 0");
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("Rule1-SemiJoin")) << r.TraceToString();
  EXPECT_TRUE(r.Fired("Rule1-AntiJoin")) << r.TraceToString();
  EXPECT_TRUE(ContainsKind(r.expr, ExprKind::kSemiJoin));
  EXPECT_TRUE(ContainsKind(r.expr, ExprKind::kAntiJoin));
  EXPECT_FALSE(HasNestedBaseTable(r.expr));
}

TEST_F(Rule1Test, CorrelatedRangeIsNotUnnestedDirectly) {
  // ∃z ∈ x.c · z.d > 0 — iteration over a set-valued attribute stays
  // (the paper's explicit non-goal), no join introduced.
  ExprPtr e = Expr::Select(
      "x",
      Expr::Quant(QuantKind::kExists, "z", Expr::Access(Expr::Var("x"), "c"),
                  Expr::Bin(BinOp::kGt, Expr::Access(Expr::Var("z"), "d"),
                            Expr::Const(Value::Int(0)))),
      Expr::Table("X"));
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_FALSE(ContainsKind(r.expr, ExprKind::kSemiJoin));
  EXPECT_EQ(r.expr->kind(), ExprKind::kSelect);
}

TEST_F(Rule1Test, ReferentialIntegrityQueryNeedsUnnestFirst) {
  // Example Query 4 cannot fire Rule 1 alone (the ∃ ranges over x.c);
  // with attribute unnesting disabled it stays nested.
  RewriteOptions opts;
  opts.enable_unnest_attr = false;
  ExprPtr e = TranslateOrDie(
      *db_,
      "select s.eid from s in SUPPLIER where "
      "exists z in s.parts : not exists p in PART : z.pid = p.pid");
  RewriteResult r = CheckEquivalence(*db_, e, opts);
  EXPECT_TRUE(HasNestedBaseTable(r.expr));
}

TEST_F(Rule1Test, SemijoinOfSelectionPushesThrough) {
  // The outer X is itself filtered; the semijoin applies to the filtered
  // input and the residual selection stays.
  ExprPtr e = TranslateOrDie(
      *db_,
      "select x from x in X where x.a > 1 and "
      "(exists y in Y : y.a = x.a)");
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("Rule1-SemiJoin")) << r.TraceToString();
  EXPECT_FALSE(HasNestedBaseTable(r.expr));
}

TEST_F(Rule1Test, UncorrelatedSubqueryIsHoistedNotJoined) {
  // where x.a in (select y.a from y in Y where y.e = 1) — wait, that IS
  // correlated-free: the subquery is constant; hoisting should make it a
  // let-bound value rather than a join.
  ExprPtr e = TranslateOrDie(
      *db_,
      "select x from x in X where x.c = "
      "(select (d = y.e) from y in Y where y.a = 99)");
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("HoistUncorrelated")) << r.TraceToString();
  EXPECT_EQ(r.expr->kind(), ExprKind::kLet);
}

TEST_F(Rule1Test, IndependentConjunctsLeaveTheQuantifier) {
  // ∃y∈Y·(x.a > 2 ∧ y.a = x.a): the x-only conjunct moves out of the
  // quantifier, Rule 1 handles the rest, and pushdown filters X.
  ExprPtr e = Expr::Select(
      "x",
      Expr::Quant(
          QuantKind::kExists, "y", Expr::Table("Y"),
          Expr::And(Expr::Bin(BinOp::kGt, Expr::Access(Expr::Var("x"), "a"),
                              Expr::Const(Value::Int(2))),
                    Expr::Eq(Expr::Access(Expr::Var("y"), "a"),
                             Expr::Access(Expr::Var("x"), "a")))),
      Expr::Table("X"));
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("ExtractIndependentConjuncts")) << r.TraceToString();
  EXPECT_TRUE(r.Fired("Rule1-SemiJoin")) << r.TraceToString();
  EXPECT_FALSE(HasNestedBaseTable(r.expr)) << AlgebraStr(r.expr);
}

TEST_F(Rule1Test, IndependentExtractionHandlesEmptyRangesCorrectly) {
  // ∃y∈Y'·p with fully independent p is NOT simply p: the range's
  // emptiness still matters. Both forms must agree on data where the
  // correlated range can be empty.
  ExprPtr subq = Expr::Select(
      "y", Expr::Eq(Expr::Access(Expr::Var("y"), "a"),
                    Expr::Access(Expr::Var("x"), "a")),
      Expr::Table("Y"));
  ExprPtr e = Expr::Select(
      "x",
      Expr::Quant(QuantKind::kExists, "y2", subq,
                  Expr::Bin(BinOp::kGe, Expr::Access(Expr::Var("x"), "a"),
                            Expr::Const(Value::Int(0)))),
      Expr::Table("X"));
  CheckEquivalence(*db_, e);
}

TEST_F(Rule1Test, ForallDisjunctExtraction) {
  // ∀y∈Y·(x.a < 0 ∨ y.e >= 0) — the x-only disjunct moves out; the
  // remainder becomes an antijoin.
  ExprPtr e = Expr::Select(
      "x",
      Expr::Quant(
          QuantKind::kForall, "y", Expr::Table("Y"),
          Expr::Or(Expr::Bin(BinOp::kLt, Expr::Access(Expr::Var("x"), "a"),
                             Expr::Const(Value::Int(0))),
                   Expr::Bin(BinOp::kGe, Expr::Access(Expr::Var("y"), "e"),
                             Expr::Const(Value::Int(0))))),
      Expr::Table("X"));
  RewriteResult r = CheckEquivalence(*db_, e);
  EXPECT_TRUE(r.Fired("ExtractIndependentConjuncts")) << r.TraceToString();
}

}  // namespace
}  // namespace n2j
