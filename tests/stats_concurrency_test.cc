// Concurrency regressions for StatsCatalog (ISSUE 7 satellite): the
// lazy refresh must neither double-compute statistics nor hand readers
// a snapshot that a concurrent refresh then mutates or frees. The
// catalog publishes immutable shared_ptr snapshots; a refresh swaps the
// cache slot and old snapshots stay valid for their holders.
//
// Structure: mutations are single-threaded *between* concurrent-read
// phases (Table::Append itself is not part of this contract); within a
// phase, many threads race Get() on a stale entry while others keep
// reading snapshots captured before the mutation. Run under TSan in CI.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "adl/type.h"
#include "adl/value.h"
#include "stats/stats.h"
#include "storage/database.h"

namespace n2j {
namespace {

void InsertRows(Database* db, int from, int to) {
  for (int i = from; i < to; ++i) {
    ASSERT_TRUE(db->Insert("T",
                           Value::Tuple({Field("k", Value::Int(i % 31)),
                                         Field("v", Value::Int(i))}))
                    .ok());
  }
}

TEST(StatsCatalogConcurrency, RefreshRaceAndSnapshotStability) {
  Database db;
  ASSERT_TRUE(db.CreateTable("T", Type::Tuple({{"k", Type::Int()},
                                               {"v", Type::Int()}}))
                  .ok());
  constexpr int kPhases = 6;
  constexpr int kRowsPerPhase = 200;
  constexpr int kThreads = 8;

  InsertRows(&db, 0, kRowsPerPhase);
  std::shared_ptr<const ExtentStats> held = db.stats().Get(db, "T");
  ASSERT_NE(held, nullptr);

  for (int phase = 1; phase < kPhases; ++phase) {
    // Single-threaded mutation: bump the table version so the next
    // Get() races on the lazy refresh.
    InsertRows(&db, phase * kRowsPerPhase, (phase + 1) * kRowsPerPhase);
    const uint64_t expect_rows =
        static_cast<uint64_t>((phase + 1) * kRowsPerPhase);
    const uint64_t held_rows = held->row_count;

    std::vector<std::shared_ptr<const ExtentStats>> got(kThreads);
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t]() {
        if (t % 2 == 0) {
          // Refresher: races the stale-entry recompute with its peers.
          got[static_cast<size_t>(t)] = db.stats().Get(db, "T");
        } else {
          // Validator: the pre-mutation snapshot must stay immutable
          // and alive while the cache slot is being swapped under it.
          for (int spin = 0; spin < 100; ++spin) {
            if (held->row_count != held_rows) {
              ADD_FAILURE() << "held snapshot mutated by refresh";
              return;
            }
            const AttrStats* k = held->Find("k");
            if (k == nullptr || k->distinct == 0 ||
                k->distinct > held->row_count) {
              ADD_FAILURE() << "held snapshot internally torn";
              return;
            }
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();

    // Every refresher saw the same published snapshot (compute happens
    // once, under the catalog mutex; latecomers hit the cache), and it
    // reflects the post-mutation extent exactly.
    std::shared_ptr<const ExtentStats> fresh;
    for (int t = 0; t < kThreads; t += 2) {
      ASSERT_NE(got[static_cast<size_t>(t)], nullptr);
      if (fresh == nullptr) fresh = got[static_cast<size_t>(t)];
      EXPECT_EQ(got[static_cast<size_t>(t)].get(), fresh.get())
          << "refresh computed more than one snapshot for one version";
    }
    EXPECT_EQ(fresh->row_count, expect_rows);
    const AttrStats* k = fresh->Find("k");
    ASSERT_NE(k, nullptr);
    EXPECT_EQ(k->distinct, 31u);

    // The old snapshot is a different object and still intact.
    EXPECT_NE(fresh.get(), held.get());
    EXPECT_EQ(held->row_count, held_rows);
    held = fresh;
  }
}

TEST(StatsCatalogConcurrency, ClearWhileHoldingSnapshot) {
  Database db;
  ASSERT_TRUE(
      db.CreateTable("T", Type::Tuple({{"k", Type::Int()},
                                       {"v", Type::Int()}}))
          .ok());
  InsertRows(&db, 0, 50);
  std::shared_ptr<const ExtentStats> snap = db.stats().Get(db, "T");
  ASSERT_NE(snap, nullptr);
  db.stats().Clear();
  // Dropping the cache must not free snapshots already handed out.
  EXPECT_EQ(snap->row_count, 50u);
  ASSERT_NE(snap->Find("k"), nullptr);
  std::shared_ptr<const ExtentStats> again = db.stats().Get(db, "T");
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(again->row_count, 50u);
}

}  // namespace
}  // namespace n2j
