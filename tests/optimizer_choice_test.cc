// Plan-quality harness for the cost-based optimizer (ISSUE 6).
//
// Two layers of assertion:
//
//  1. Golden trajectory comparison — the join-algorithm sweep benchmark
//     (bench_join_algorithms.cc) records the measured wall time of every
//     physical alternative per (shape, n) in
//     bench/trajectory/join_algorithms.json. For the identical database
//     and plan, the planner's chosen algorithm must be within 10% of the
//     empirically fastest recorded variant.
//
//  2. Measured plan choice — for the paper's Fig. 1 / Fig. 3 / Query 4 /
//     Query 6 shapes across four datagen configurations (uniform, skewed
//     fanout, low match rate, tight PNHL memory budget), every physical
//     alternative is timed in-process and the cost-based plan's measured
//     runtime must be within 10% (plus a small absolute guard against
//     sub-millisecond timer noise) of the best alternative.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "adl/type.h"
#include "adl/value.h"
#include "core/engine.h"
#include "exec/eval.h"
#include "opt/optimizer.h"
#include "storage/datagen.h"

namespace n2j {
namespace {

// ---------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------

/// Milliseconds per evaluation: repeats until >= min_ms accumulated,
/// takes the minimum over `rounds` such measurements (minimum is the
/// noise-robust statistic for "how fast can this plan run").
double TimeMs(const std::function<void()>& fn, double min_ms = 15.0,
              int rounds = 3) {
  using Clock = std::chrono::steady_clock;
  fn();  // warm-up
  double best = -1.0;
  for (int r = 0; r < rounds; ++r) {
    int iters = 1;
    for (;;) {
      auto start = Clock::now();
      for (int i = 0; i < iters; ++i) fn();
      double elapsed =
          std::chrono::duration<double, std::milli>(Clock::now() - start)
              .count();
      if (elapsed >= min_ms || iters > (1 << 20)) {
        double per = elapsed / iters;
        if (best < 0 || per < best) best = per;
        break;
      }
      iters *= 2;
    }
  }
  return best;
}

Value MustEval(const Database& db, const ExprPtr& e,
               const EvalOptions& opts = EvalOptions()) {
  Evaluator ev(db, opts);
  Result<Value> r = ev.Eval(e);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : Value::Null();
}

PhysicalPlan MustPlan(const Database& db, const ExprPtr& e,
                      PlannerOptions popts = PlannerOptions()) {
  popts.strategy = PlanStrategy::kCost;
  Planner planner(db, popts);
  Result<PhysicalPlan> pp = planner.Plan(e);
  EXPECT_TRUE(pp.ok()) << pp.status().ToString();
  return *std::move(pp);
}

/// First join-family node in pre-order (left-deep roots come first).
const Expr* FindJoinNode(const ExprPtr& e) {
  switch (e->kind()) {
    case ExprKind::kJoin:
    case ExprKind::kSemiJoin:
    case ExprKind::kAntiJoin:
    case ExprKind::kNestJoin:
      return e.get();
    default:
      break;
  }
  for (const ExprPtr& c : e->children()) {
    if (const Expr* j = FindJoinNode(c)) return j;
  }
  return nullptr;
}

/// Maps the planner's algorithm pin to the trajectory variant name.
const char* VariantName(JoinAlgorithm a) {
  switch (a) {
    case JoinAlgorithm::kNestedLoop: return "nested";
    case JoinAlgorithm::kHash: return "hash";
    case JoinAlgorithm::kSortMerge: return "sortmerge";
    case JoinAlgorithm::kIndex: return "index";
    case JoinAlgorithm::kAuto: return "auto";
  }
  return "?";
}

// ---------------------------------------------------------------------
// Layer 1: golden comparison against the checked-in benchmark trajectory
// ---------------------------------------------------------------------

struct TrajPoint {
  std::string sweep;
  std::string variant;
  int n = 0;
  double ms = 0.0;
};

std::vector<TrajPoint> LoadTrajectory(const std::string& path) {
  std::vector<TrajPoint> points;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::string line;
  while (std::getline(in, line)) {
    char sweep[64], variant[64];
    int n;
    double ms;
    if (std::sscanf(line.c_str(),
                    " {\"sweep\": \"%63[^\"]\", \"variant\": \"%63[^\"]\", "
                    "\"n\": %d, \"ms\": %lf",
                    sweep, variant, &n, &ms) == 4) {
      points.push_back(TrajPoint{sweep, variant, n, ms});
    }
  }
  return points;
}

/// The exact database bench_join_algorithms.cc measures: X/Y with n rows
/// each, keys uniform in [0, n), and a prebuilt index on Y.a.
std::unique_ptr<Database> MakeSweepDb(int n) {
  auto db = std::make_unique<Database>();
  XYConfig config;
  config.seed = 47;
  config.x_rows = n;
  config.y_rows = n;
  config.key_domain = n;
  EXPECT_TRUE(AddRandomXY(db.get(), config).ok());
  EXPECT_TRUE(db->CreateIndex("Y", "a").ok());
  return db;
}

ExprPtr SweepSemiJoin() {
  return Expr::SemiJoin(Expr::Table("X"), Expr::Table("Y"), "x", "y",
                        Expr::Eq(Expr::Access(Expr::Var("y"), "a"),
                                 Expr::Access(Expr::Var("x"), "a")));
}

ExprPtr SweepNestJoin() {
  return Expr::NestJoin(Expr::Table("X"), Expr::Table("Y"), "x", "y",
                        Expr::Eq(Expr::Access(Expr::Var("y"), "a"),
                                 Expr::Access(Expr::Var("x"), "a")),
                        "ys");
}

void CheckGoldenChoice(const char* sweep, const ExprPtr& plan) {
  std::vector<TrajPoint> traj =
      LoadTrajectory(std::string(N2J_TRAJECTORY_DIR) +
                     "/join_algorithms.json");
  ASSERT_FALSE(traj.empty());
  for (int n : {64, 256, 1024}) {
    auto db = MakeSweepDb(n);
    PhysicalPlan pp = MustPlan(*db, plan);
    const Expr* join = FindJoinNode(pp.root);
    ASSERT_NE(join, nullptr);
    const PlanAnnotation* pa = pp.annotations.Find(join);
    ASSERT_NE(pa, nullptr) << sweep << " n=" << n;
    ASSERT_NE(pa->algorithm, JoinAlgorithm::kAuto) << sweep << " n=" << n;
    std::string chosen = VariantName(pa->algorithm);

    double chosen_ms = -1.0, best_ms = -1.0;
    std::string best;
    for (const TrajPoint& p : traj) {
      if (p.sweep != sweep || p.n != n) continue;
      if (p.variant == chosen) chosen_ms = p.ms;
      if (best_ms < 0 || p.ms < best_ms) {
        best_ms = p.ms;
        best = p.variant;
      }
    }
    ASSERT_GT(best_ms, 0) << "no trajectory points for " << sweep
                          << " n=" << n;
    ASSERT_GT(chosen_ms, 0) << "chosen variant '" << chosen
                            << "' not in trajectory for " << sweep
                            << " n=" << n;
    EXPECT_LE(chosen_ms, 1.10 * best_ms)
        << sweep << " n=" << n << ": planner chose " << chosen << " ("
        << chosen_ms << " ms) but " << best << " measured " << best_ms
        << " ms";
  }
}

TEST(OptimizerGoldenChoice, SemiJoinMatchesBenchTrajectory) {
  CheckGoldenChoice("semijoin", SweepSemiJoin());
}

TEST(OptimizerGoldenChoice, NestJoinMatchesBenchTrajectory) {
  CheckGoldenChoice("nestjoin", SweepNestJoin());
}

// ---------------------------------------------------------------------
// Layer 2: measured plan choice on the paper workloads × datagen configs
// ---------------------------------------------------------------------

struct WorkloadShape {
  const char* tag;
  const char* oosql;
};

// Fig. 1 (nested query → semijoin), Fig. 3 (nestjoin grouping), Example
// Query 4 (dangling set-attribute references), Example Query 6 shape
// (set comparison against a correlated subquery).
const WorkloadShape kShapes[] = {
    {"fig1", "select x from x in X where exists y in Y : y.a = x.a"},
    {"fig3",
     "select (a = x.a, ys = (select y.e from y in Y where y.a = x.a)) "
     "from x in X"},
    {"q4",
     "select s.eid from s in SUPPLIER where "
     "exists z in s.parts : not exists p in PART : z.pid = p.pid"},
    {"q6",
     "select x from x in X where x.c subseteq "
     "(select (d = y.e) from y in Y where y.a = x.a)"},
};

struct DatagenConfig {
  const char* name;
  SupplierPartConfig sp;
  XYConfig xy;
  size_t pnhl_budget = SIZE_MAX;
};

std::vector<DatagenConfig> MakeConfigs() {
  std::vector<DatagenConfig> configs;
  {
    DatagenConfig c;
    c.name = "uniform";
    c.sp.seed = 11;
    c.sp.num_parts = 256;
    c.sp.num_suppliers = 64;
    c.sp.parts_per_supplier = 6;
    c.xy.seed = 13;
    c.xy.x_rows = 256;
    c.xy.y_rows = 256;
    c.xy.key_domain = 256;
    c.xy.value_domain = 64;
    configs.push_back(c);
  }
  {
    DatagenConfig c;
    c.name = "skewed-fanout";
    c.sp.seed = 17;
    c.sp.num_parts = 256;
    c.sp.num_suppliers = 64;
    c.sp.parts_per_supplier = 14;
    c.sp.skew = 1.1;
    c.xy.seed = 19;
    c.xy.x_rows = 256;
    c.xy.y_rows = 256;
    c.xy.key_domain = 32;  // heavy key duplication
    c.xy.max_set_size = 8;
    configs.push_back(c);
  }
  {
    DatagenConfig c;
    c.name = "low-match";
    c.sp.seed = 23;
    c.sp.num_parts = 256;
    c.sp.num_suppliers = 64;
    c.sp.parts_per_supplier = 6;
    c.sp.match_fraction = 0.25;
    c.xy.seed = 29;
    c.xy.x_rows = 256;
    c.xy.y_rows = 256;
    c.xy.key_domain = 2048;  // most probes miss
    configs.push_back(c);
  }
  {
    DatagenConfig c;
    c.name = "tight-pnhl-budget";
    c.sp.seed = 31;
    c.sp.num_parts = 256;
    c.sp.num_suppliers = 64;
    c.sp.parts_per_supplier = 6;
    c.xy.seed = 37;
    c.xy.x_rows = 256;
    c.xy.y_rows = 256;
    c.xy.key_domain = 256;
    c.pnhl_budget = 512;
    configs.push_back(c);
  }
  return configs;
}

std::unique_ptr<Database> MakeConfigDb(const DatagenConfig& c) {
  auto db = MakeSupplierPartDatabase(c.sp);
  EXPECT_TRUE(AddRandomXY(db.get(), c.xy).ok());
  EXPECT_TRUE(db->CreateIndex("Y", "a").ok());
  return db;
}

/// True when built with ASan/TSan instrumentation. Wall-clock
/// acceptance is meaningless there: the cost model's constants describe
/// the uninstrumented machine, and sanitizers skew per-algorithm ratios
/// (pointer chasing pays more than hashing). Bit-exactness of the
/// cost-based plans is still covered sanitized, by the DP test below
/// and the fuzzer's cost-based matrix cell.
constexpr bool BuiltWithSanitizers() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

TEST(OptimizerMeasuredChoice, WithinTenPercentOfBestAlternative) {
  if (BuiltWithSanitizers()) {
    GTEST_SKIP() << "timing acceptance skipped under sanitizers";
  }
  for (const DatagenConfig& config : MakeConfigs()) {
    auto db = MakeConfigDb(config);
    QueryEngine engine(db.get());
    PlannerOptions popts;
    popts.pnhl_memory_budget = config.pnhl_budget;
    for (const WorkloadShape& shape : kShapes) {
      SCOPED_TRACE(std::string(config.name) + "/" + shape.tag);
      Result<QueryReport> translated = engine.Translate(shape.oosql);
      ASSERT_TRUE(translated.ok()) << translated.status().ToString();
      Result<RewriteResult> rewritten =
          engine.Optimize(translated->translated);
      ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
      ExprPtr plan = rewritten->expr;

      // The physical alternatives: the paper's inventory, forced.
      struct Alternative {
        const char* name;
        EvalOptions opts;
      };
      std::vector<Alternative> alts;
      {
        Alternative nested{"nested", EvalOptions()};
        nested.opts.use_hash_joins = false;
        nested.opts.enable_pnhl = false;
        alts.push_back(nested);
      }
      for (JoinAlgorithm a : {JoinAlgorithm::kHash, JoinAlgorithm::kSortMerge,
                              JoinAlgorithm::kIndex}) {
        Alternative alt{VariantName(a), EvalOptions()};
        alt.opts.join_algorithm = a;
        alt.opts.pnhl_memory_budget = config.pnhl_budget;
        alts.push_back(alt);
      }

      PhysicalPlan pp = MustPlan(*db, plan, popts);
      EvalOptions planned_opts;
      planned_opts.plan = &pp.annotations;
      planned_opts.pnhl_memory_budget = config.pnhl_budget;

      // Correctness first: every alternative and the planned execution
      // agree bit-for-bit.
      Value expected = MustEval(*db, plan, alts[0].opts);
      for (size_t i = 1; i < alts.size(); ++i) {
        ASSERT_EQ(MustEval(*db, plan, alts[i].opts), expected)
            << alts[i].name;
      }
      ASSERT_EQ(MustEval(*db, pp.root, planned_opts), expected);

      double best_ms = -1.0;
      std::string best;
      for (const Alternative& alt : alts) {
        double ms = TimeMs([&] { MustEval(*db, plan, alt.opts); });
        if (best_ms < 0 || ms < best_ms) {
          best_ms = ms;
          best = alt.name;
        }
      }
      double planned_ms =
          TimeMs([&] { MustEval(*db, pp.root, planned_opts); });
      // Acceptance: within 10% of the best physical alternative. The
      // 0.1 ms absolute guard absorbs scheduler jitter and fixed
      // per-query overhead on the sub-millisecond cells without
      // weakening the relative bound where differences are meaningful.
      EXPECT_LE(planned_ms, 1.10 * best_ms + 0.1)
          << "cost-based plan ran " << planned_ms << " ms but " << best
          << " measured " << best_ms << " ms\n"
          << pp.Describe();
    }
  }
}

// The planner must also *report* its decisions: Describe() carries one
// line per priced operator with estimates, and reordering stays off for
// single joins.
TEST(OptimizerMeasuredChoice, DescribeListsPricedOperators) {
  auto db = MakeSweepDb(128);
  PhysicalPlan pp = MustPlan(*db, SweepSemiJoin());
  EXPECT_FALSE(pp.lines.empty());
  std::string desc = pp.Describe();
  EXPECT_NE(desc.find("semijoin["), std::string::npos) << desc;
  EXPECT_NE(desc.find("est_rows="), std::string::npos) << desc;
  EXPECT_NE(desc.find("est_cost="), std::string::npos) << desc;
  EXPECT_FALSE(pp.reordered);
}

// A pure-equi chain of three base tables exercises the Selinger-style
// join-order DP: joining the two small tables first beats starting from
// the big one. The reordered plan must stay bit-identical.
TEST(OptimizerMeasuredChoice, JoinOrderDpReordersSkewedChain) {
  // Three plain tables with disjoint attribute names (flat join concat
  // needs them unique): A is big, B and C are small. Keys are all drawn
  // from [0, 64) so every join has matches.
  auto db = std::make_unique<Database>();
  ASSERT_TRUE(db->CreateTable("A", Type::Tuple({{"a1", Type::Int()},
                                                {"a2", Type::Int()}}))
                  .ok());
  ASSERT_TRUE(db->CreateTable("B", Type::Tuple({{"b1", Type::Int()},
                                                {"b2", Type::Int()}}))
                  .ok());
  ASSERT_TRUE(
      db->CreateTable("C", Type::Tuple({{"c1", Type::Int()}})).ok());
  for (int i = 0; i < 2048; ++i) {
    ASSERT_TRUE(db->Insert("A", Value::Tuple({Field("a1", Value::Int(i % 64)),
                                              Field("a2", Value::Int(i))}))
                    .ok());
  }
  for (int i = 0; i < 48; ++i) {
    ASSERT_TRUE(db->Insert("B", Value::Tuple({Field("b1", Value::Int(i % 64)),
                                              Field("b2", Value::Int(i % 64))}))
                    .ok());
    ASSERT_TRUE(
        db->Insert("C", Value::Tuple({Field("c1", Value::Int(i % 64))})).ok());
  }

  // (A ⋈ B) ⋈ C on A.a1=B.b1, B.b2=C.c1 — a left-deep chain whose
  // cheapest order starts with the two small tables.
  ExprPtr inner =
      Expr::Join(Expr::Table("A"), Expr::Table("B"), "x", "y",
                 Expr::Eq(Expr::Access(Expr::Var("x"), "a1"),
                          Expr::Access(Expr::Var("y"), "b1")));
  ExprPtr chain =
      Expr::Join(inner, Expr::Table("C"), "v", "z",
                 Expr::Eq(Expr::Access(Expr::Var("v"), "b2"),
                          Expr::Access(Expr::Var("z"), "c1")));

  EvalOptions nested;
  nested.use_hash_joins = false;
  Value expected = MustEval(*db, chain, nested);

  PhysicalPlan pp = MustPlan(*db, chain);
  EvalOptions planned_opts;
  planned_opts.plan = &pp.annotations;
  EXPECT_EQ(MustEval(*db, pp.root, planned_opts), expected);
  EXPECT_TRUE(pp.reordered) << pp.Describe();
}

}  // namespace
}  // namespace n2j
