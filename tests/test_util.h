#ifndef N2J_TESTS_TEST_UTIL_H_
#define N2J_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "adl/printer.h"
#include "core/engine.h"
#include "exec/eval.h"
#include "oosql/translate.h"
#include "rewrite/rewriter.h"
#include "storage/datagen.h"

namespace n2j {
namespace testutil {

/// A small deterministic supplier–part database for functional tests.
inline std::unique_ptr<Database> SmallSupplierDb() {
  SupplierPartConfig config;
  config.seed = 7;
  config.num_parts = 40;
  config.num_suppliers = 12;
  config.parts_per_supplier = 5;
  config.red_fraction = 0.3;
  config.match_fraction = 0.8;  // some dangling references
  config.num_deliveries = 10;
  return MakeSupplierPartDatabase(config);
}

/// Translates OOSQL text against `db`, aborting the test on failure.
inline ExprPtr TranslateOrDie(const Database& db, const std::string& text) {
  Translator tr(db.schema(), &db);
  Result<TypedExpr> typed = tr.TranslateString(text);
  EXPECT_TRUE(typed.ok()) << text << "\n" << typed.status().ToString();
  if (!typed.ok()) std::abort();
  return typed->expr;
}

/// Evaluates an ADL expression, aborting on failure.
inline Value EvalExpr(const Database& db, const ExprPtr& e,
                      EvalOptions opts = EvalOptions()) {
  Evaluator ev(db, opts);
  Result<Value> r = ev.Eval(e);
  EXPECT_TRUE(r.ok()) << AlgebraStr(e) << "\n" << r.status().ToString();
  if (!r.ok()) std::abort();
  return *r;
}

/// Rewrites with the given options, aborting on failure.
inline RewriteResult RewriteExpr(const Database& db, const ExprPtr& e,
                                 RewriteOptions opts = RewriteOptions()) {
  Rewriter rw(db.schema(), &db, opts);
  Result<RewriteResult> r = rw.Rewrite(e);
  EXPECT_TRUE(r.ok()) << AlgebraStr(e) << "\n" << r.status().ToString();
  if (!r.ok()) std::abort();
  return *r;
}

/// Asserts that the rewritten form of `e` evaluates to the same value as
/// the original (the core algebraic-equivalence property), and returns
/// the rewrite result for further inspection.
inline RewriteResult CheckEquivalence(const Database& db, const ExprPtr& e,
                                      RewriteOptions opts = RewriteOptions()) {
  Value before = EvalExpr(db, e);
  RewriteResult rewritten = RewriteExpr(db, e, opts);
  Value after = EvalExpr(db, rewritten.expr);
  EXPECT_EQ(before, after)
      << "original:  " << AlgebraStr(e) << "\n"
      << "rewritten: " << AlgebraStr(rewritten.expr) << "\n"
      << "trace:\n"
      << rewritten.TraceToString();
  return rewritten;
}

/// Minimal strict RFC 8259 reader: validates a full document and
/// collects every decoded string value/key. No dependency, no leniency —
/// a lenient parser would defeat the point of the JSON-shape tests
/// (chrome_trace_test.cc, querylog_test.cc) that use it.
class JsonReader {
 public:
  explicit JsonReader(const std::string& s) : s_(s) {}

  bool ParseDocument() {
    SkipWs();
    if (!ParseValue()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

  const std::vector<std::string>& strings() const { return strings_; }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Literal(const char* lit) {
    size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool ParseValue() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return ParseString();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return ParseNumber();
    }
  }
  bool ParseObject() {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != '"' || !ParseString()) {
        return false;
      }
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_++] != ':') return false;
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool ParseArray() {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < s_.size()) {
      unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        strings_.push_back(out);
        return true;
      }
      if (c < 0x20) return false;  // raw control char: invalid JSON
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            unsigned int cp = 0;
            for (int i = 0; i < 4; ++i) {
              char h = s_[pos_++];
              cp <<= 4;
              if (h >= '0' && h <= '9') {
                cp += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                cp += 10u + static_cast<unsigned>(h - 'a');
              } else if (h >= 'A' && h <= 'F') {
                cp += 10u + static_cast<unsigned>(h - 'A');
              } else {
                return false;
              }
            }
            // The library's writers only emit \u00xx for control bytes.
            if (cp > 0xFF) return false;
            out += static_cast<char>(cp);
            break;
          }
          default: return false;
        }
        continue;
      }
      out += static_cast<char>(c);
      ++pos_;
    }
    return false;  // unterminated
  }
  bool ParseNumber() {
    size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
            s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  const std::string& s_;
  size_t pos_ = 0;
  std::vector<std::string> strings_;
};

/// True if the expression still has a base table below an iterator's
/// parameter expression (i.e. nested-loop residue). The paper's goal is
/// to make this false.
inline bool HasNestedBaseTable(const ExprPtr& e) {
  bool found = false;
  // Parameter expressions: bodies/preds of iterators.
  std::function<void(const ExprPtr&, bool)> walk = [&](const ExprPtr& n,
                                                       bool in_param) {
    if (n->kind() == ExprKind::kGetTable && in_param) {
      found = true;
      return;
    }
    for (size_t i = 0; i < n->num_children(); ++i) {
      bool param = in_param;
      switch (n->kind()) {
        case ExprKind::kMap:
        case ExprKind::kSelect:
          if (i == 1) param = true;
          break;
        case ExprKind::kQuantifier:
          if (i == 1) param = true;
          break;
        case ExprKind::kJoin:
        case ExprKind::kSemiJoin:
        case ExprKind::kAntiJoin:
          if (i == 2) param = true;
          break;
        case ExprKind::kNestJoin:
          if (i >= 2) param = true;
          break;
        default:
          break;
      }
      walk(n->child(i), param);
    }
  };
  walk(e, false);
  return found;
}

}  // namespace testutil
}  // namespace n2j

#endif  // N2J_TESTS_TEST_UTIL_H_
