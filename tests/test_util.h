#ifndef N2J_TESTS_TEST_UTIL_H_
#define N2J_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "adl/printer.h"
#include "core/engine.h"
#include "exec/eval.h"
#include "oosql/translate.h"
#include "rewrite/rewriter.h"
#include "storage/datagen.h"

namespace n2j {
namespace testutil {

/// A small deterministic supplier–part database for functional tests.
inline std::unique_ptr<Database> SmallSupplierDb() {
  SupplierPartConfig config;
  config.seed = 7;
  config.num_parts = 40;
  config.num_suppliers = 12;
  config.parts_per_supplier = 5;
  config.red_fraction = 0.3;
  config.match_fraction = 0.8;  // some dangling references
  config.num_deliveries = 10;
  return MakeSupplierPartDatabase(config);
}

/// Translates OOSQL text against `db`, aborting the test on failure.
inline ExprPtr TranslateOrDie(const Database& db, const std::string& text) {
  Translator tr(db.schema(), &db);
  Result<TypedExpr> typed = tr.TranslateString(text);
  EXPECT_TRUE(typed.ok()) << text << "\n" << typed.status().ToString();
  if (!typed.ok()) std::abort();
  return typed->expr;
}

/// Evaluates an ADL expression, aborting on failure.
inline Value EvalExpr(const Database& db, const ExprPtr& e,
                      EvalOptions opts = EvalOptions()) {
  Evaluator ev(db, opts);
  Result<Value> r = ev.Eval(e);
  EXPECT_TRUE(r.ok()) << AlgebraStr(e) << "\n" << r.status().ToString();
  if (!r.ok()) std::abort();
  return *r;
}

/// Rewrites with the given options, aborting on failure.
inline RewriteResult RewriteExpr(const Database& db, const ExprPtr& e,
                                 RewriteOptions opts = RewriteOptions()) {
  Rewriter rw(db.schema(), &db, opts);
  Result<RewriteResult> r = rw.Rewrite(e);
  EXPECT_TRUE(r.ok()) << AlgebraStr(e) << "\n" << r.status().ToString();
  if (!r.ok()) std::abort();
  return *r;
}

/// Asserts that the rewritten form of `e` evaluates to the same value as
/// the original (the core algebraic-equivalence property), and returns
/// the rewrite result for further inspection.
inline RewriteResult CheckEquivalence(const Database& db, const ExprPtr& e,
                                      RewriteOptions opts = RewriteOptions()) {
  Value before = EvalExpr(db, e);
  RewriteResult rewritten = RewriteExpr(db, e, opts);
  Value after = EvalExpr(db, rewritten.expr);
  EXPECT_EQ(before, after)
      << "original:  " << AlgebraStr(e) << "\n"
      << "rewritten: " << AlgebraStr(rewritten.expr) << "\n"
      << "trace:\n"
      << rewritten.TraceToString();
  return rewritten;
}

/// True if the expression still has a base table below an iterator's
/// parameter expression (i.e. nested-loop residue). The paper's goal is
/// to make this false.
inline bool HasNestedBaseTable(const ExprPtr& e) {
  bool found = false;
  // Parameter expressions: bodies/preds of iterators.
  std::function<void(const ExprPtr&, bool)> walk = [&](const ExprPtr& n,
                                                       bool in_param) {
    if (n->kind() == ExprKind::kGetTable && in_param) {
      found = true;
      return;
    }
    for (size_t i = 0; i < n->num_children(); ++i) {
      bool param = in_param;
      switch (n->kind()) {
        case ExprKind::kMap:
        case ExprKind::kSelect:
          if (i == 1) param = true;
          break;
        case ExprKind::kQuantifier:
          if (i == 1) param = true;
          break;
        case ExprKind::kJoin:
        case ExprKind::kSemiJoin:
        case ExprKind::kAntiJoin:
          if (i == 2) param = true;
          break;
        case ExprKind::kNestJoin:
          if (i >= 2) param = true;
          break;
        default:
          break;
      }
      walk(n->child(i), param);
    }
  };
  walk(e, false);
  return found;
}

}  // namespace testutil
}  // namespace n2j

#endif  // N2J_TESTS_TEST_UTIL_H_
