// Experiment: the paper's motivating claim (Sections 1 and 4) — moving
// from tuple-oriented (nested-loop) to set-oriented (join) query
// processing. "A naive way to handle nested queries is by nested-loop
// processing, however, it is better to transform nested queries into
// join queries, because join queries can be implemented in many
// different ways."
//
// Sweeps |X| = |Y| for the three canonical correlated-subquery shapes
// and reports wall time plus predicate-evaluation counts for:
//   nested  — the naive translation executed as-is,
//   plan/NL — the rewritten join executed with nested-loop joins
//             (set-oriented shape, tuple-oriented operator),
//   plan/H  — the rewritten join executed with hash joins.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "oosql/translate.h"

namespace n2j {
namespace {

using bench::MustEval;
using bench::MustRewrite;
using bench::Section;
using bench::TimeMs;

std::unique_ptr<Database> MakeDb(int n, uint64_t seed) {
  auto db = std::make_unique<Database>();
  XYConfig config;
  config.seed = seed;
  config.x_rows = n;
  config.y_rows = n;
  config.key_domain = n;
  config.value_domain = 32;
  N2J_CHECK(AddRandomXY(db.get(), config).ok());
  return db;
}

ExprPtr Translate(const Database& db, const std::string& text) {
  Translator tr(db.schema(), &db);
  Result<TypedExpr> typed = tr.TranslateString(text);
  N2J_CHECK(typed.ok());
  return typed->expr;
}

struct Shape {
  const char* name;
  const char* query;
};

const Shape kShapes[] = {
    {"semijoin (∃)",
     "select x from x in X where exists y in Y : y.a = x.a"},
    {"antijoin (¬∃)",
     "select x from x in X where not exists y in Y : y.a = x.a"},
    {"join (pairing)",
     "select (xa = x.a, ye = y.e) from x in X, y in Y where x.a = y.a"},
};

void SweepSizes() {
  for (const Shape& shape : kShapes) {
    Section(std::string("Shape: ") + shape.name + "\n  " + shape.query);
    std::printf("%8s %13s %13s %13s %10s %20s\n", "n", "nested (ms)",
                "plan/NL (ms)", "plan/H (ms)", "speedup",
                "pred-evals nested/H");
    for (int n : {32, 64, 128, 256, 512, 1024}) {
      auto db = MakeDb(n, 13);
      ExprPtr naive = Translate(*db, shape.query);
      ExprPtr plan = MustRewrite(*db, naive).expr;
      EvalOptions nl;
      nl.use_hash_joins = false;
      EvalStats stats_naive, stats_hash;
      Value a = MustEval(*db, naive, nl, &stats_naive);
      Value b = MustEval(*db, plan, EvalOptions(), &stats_hash);
      N2J_CHECK(a == b);
      double nested_ms = TimeMs([&] { MustEval(*db, naive, nl); }, 30);
      double plan_nl_ms = TimeMs([&] { MustEval(*db, plan, nl); }, 30);
      double plan_h_ms = TimeMs([&] { MustEval(*db, plan); }, 30);
      std::printf("%8d %13.3f %13.3f %13.3f %9.1fx %14llu/%llu\n", n,
                  nested_ms, plan_nl_ms, plan_h_ms, nested_ms / plan_h_ms,
                  static_cast<unsigned long long>(
                      stats_naive.predicate_evals),
                  static_cast<unsigned long long>(
                      stats_hash.predicate_evals));
    }
  }
  std::printf(
      "\nExpected shape (the paper's argument): nested-loop work grows\n"
      "quadratically (n^2 predicate evaluations), the hash-join plans\n"
      "~linearly; 'plan/NL' shows that even the *logical* rewrite alone\n"
      "pays off only together with a set-oriented physical operator —\n"
      "which is precisely why the paper wants joins at the top level,\n"
      "'so that the optimizer may choose from a number of different\n"
      "join processing strategies'.\n");
}

void BM_NestedLoopExists(benchmark::State& state) {
  auto db = MakeDb(static_cast<int>(state.range(0)), 13);
  ExprPtr naive = Translate(*db, kShapes[0].query);
  EvalOptions nl;
  nl.use_hash_joins = false;
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(*db, naive, nl));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NestedLoopExists)->RangeMultiplier(2)->Range(64, 1024)
    ->Complexity();

void BM_HashSemiJoin(benchmark::State& state) {
  auto db = MakeDb(static_cast<int>(state.range(0)), 13);
  ExprPtr plan = MustRewrite(*db, Translate(*db, kShapes[0].query)).expr;
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(*db, plan));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HashSemiJoin)->RangeMultiplier(2)->Range(64, 1024)
    ->Complexity();

}  // namespace
}  // namespace n2j

int main(int argc, char** argv) {
  n2j::SweepSizes();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
