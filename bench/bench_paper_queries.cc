// Experiment: the six worked queries of the paper (Sections 2–6) as an
// end-to-end workload over growing databases — the engine's "it all
// composes" check. Per query and scale: naive nested-loop time vs the
// optimized plan's time, plus which strategy the optimizer chose.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "oosql/translate.h"

namespace n2j {
namespace {

using bench::AllRewritesOff;
using bench::MustEval;
using bench::MustRewrite;
using bench::Section;
using bench::TimeMs;

struct PaperQuery {
  const char* label;
  const char* strategy;  // what the optimizer is expected to do
  const char* text;
};

const PaperQuery kQueries[] = {
    {"Q1 select-clause nesting", "nestjoin",
     "select (sname = s.sname, pnames = select p.pname from p in PART "
     "where p[pid] in s.parts and p.color = \"red\") from s in SUPPLIER"},
    {"Q2 from-clause nesting", "block merge",
     "select d from d in (select e from e in DELIVERY "
     "where e.supplier.sname = \"s1\") where d.date > 940600"},
    {"Q3.1 set comparison", "constant hoist",
     "select s.sname from s in SUPPLIER where s.parts supseteq "
     "(select x from t in SUPPLIER, x in t.parts where t.sname = \"s1\")"},
    {"Q3.2 set-attr quantifier", "stays tuple-oriented",
     "select d from d in DELIVERY where "
     "exists x in d.supply : x.part.color = \"red\""},
    {"Q4 referential integrity", "unnest + antijoin",
     "select s.eid from s in SUPPLIER where "
     "exists z in s.parts : not exists p in PART : z.pid = p.pid"},
    {"Q5 red-part suppliers", "exchange + semijoin",
     "select s.sname from s in SUPPLIER where "
     "exists x in s.parts : exists p in PART : "
     "x.pid = p.pid and p.color = \"red\""},
    {"Q6 parts per supplier", "nestjoin",
     "select (sname = s.sname, partssuppl = select p from p in PART "
     "where p[pid] in s.parts) from s in SUPPLIER"},
};

std::unique_ptr<Database> MakeDb(int parts) {
  SupplierPartConfig config;
  config.seed = 1994;
  config.num_parts = parts;
  config.num_suppliers = parts / 4;
  config.parts_per_supplier = 8;
  config.red_fraction = 0.2;
  config.match_fraction = 0.92;
  config.num_deliveries = parts / 2;
  return MakeSupplierPartDatabase(config);
}

void Sweep() {
  for (const PaperQuery& q : kQueries) {
    Section(std::string(q.label) + "  [expected: " + q.strategy + "]\n  " +
            q.text);
    std::printf("%8s %14s %16s %10s\n", "|PART|", "nested (ms)",
                "optimized (ms)", "speedup");
    for (int parts : {100, 200, 400, 800}) {
      auto db = MakeDb(parts);
      Translator tr(db->schema(), db.get());
      Result<TypedExpr> typed = tr.TranslateString(q.text);
      N2J_CHECK(typed.ok());
      ExprPtr naive = typed->expr;
      ExprPtr plan = MustRewrite(*db, naive).expr;
      EvalOptions nl;
      nl.use_hash_joins = false;
      nl.enable_pnhl = false;
      N2J_CHECK(MustEval(*db, naive, nl) == MustEval(*db, plan));
      double naive_ms = TimeMs([&] { MustEval(*db, naive, nl); }, 25);
      double plan_ms = TimeMs([&] { MustEval(*db, plan); }, 25);
      std::printf("%8d %14.3f %16.3f %9.1fx\n", parts, naive_ms, plan_ms,
                  naive_ms / plan_ms);
    }
  }
  std::printf(
      "\nQ2/Q3.1 are dominated by the single pass either way (the rewrite\n"
      "avoids recomputation, not scans); Q3.2 deliberately stays\n"
      "tuple-oriented per the paper. The correlated-subquery queries\n"
      "(Q1, Q4, Q5, Q6) show the quadratic-to-linear shift.\n");
}

void BM_WholeWorkloadOptimized(benchmark::State& state) {
  auto db = MakeDb(static_cast<int>(state.range(0)));
  Translator tr(db->schema(), db.get());
  std::vector<ExprPtr> plans;
  for (const PaperQuery& q : kQueries) {
    Result<TypedExpr> typed = tr.TranslateString(q.text);
    N2J_CHECK(typed.ok());
    plans.push_back(MustRewrite(*db, typed->expr).expr);
  }
  for (auto _ : state) {
    for (const ExprPtr& p : plans) benchmark::DoNotOptimize(MustEval(*db, p));
  }
}
BENCHMARK(BM_WholeWorkloadOptimized)->Arg(100)->Arg(400);

}  // namespace
}  // namespace n2j

int main(int argc, char** argv) {
  n2j::Sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
