// Experiment: Section 4 — the priority strategy, ablated.
//
// The paper orders its optimization options: (1) rewrite into relational
// join operators, (2) unnest set-valued attributes, (3) use new
// operators (nestjoin), (4) fall back to nested loops. This binary runs
// a mixed workload of the paper's query shapes with each option disabled
// in turn, reporting total wall time and how many queries end up with
// residual nested base tables (i.e. nested-loop execution).
//
// It also compares the paper's fixed priority strategy against the
// cost-based planner (opt/optimizer.h): every shape is executed under
// both strategies, results are asserted bit-identical, and both
// variants land in the trajectory JSON. --strategy=cost|heuristic pins
// the strategy for the google-benchmark timed loops (the comparison
// section always runs both).

#include <benchmark/benchmark.h>

#include <cstring>

#include "adl/analysis.h"
#include "bench/bench_util.h"
#include "oosql/translate.h"
#include "opt/optimizer.h"

namespace n2j {
namespace {

using bench::MustEval;
using bench::MustRewrite;
using bench::Section;
using bench::TimeMs;

const char* kWorkload[] = {
    // Rule 1 shapes.
    "select x from x in X where exists y in Y : y.a = x.a",
    "select x from x in X where not exists y in Y : y.a = x.a",
    "select x.a from x in X where x.a in "
    "(select y.e from y in Y where y.a = x.a)",
    // Attribute unnesting (Example Query 4 shape).
    "select s.eid from s in SUPPLIER where "
    "exists z in s.parts : not exists p in PART : z.pid = p.pid",
    // Quantifier exchange (Example Query 5 shape).
    "select s.sname from s in SUPPLIER where "
    "exists z in s.parts : exists p in PART : "
    "z.pid = p.pid and p.color = \"red\"",
    // Grouping-requiring shapes (nestjoin).
    "select x from x in X where x.c subseteq "
    "(select (d = y.e) from y in Y where y.a = x.a)",
    "select (a = x.a, k = count(select y from y in Y where y.a = x.a)) "
    "from x in X",
    // Constant subquery.
    "select x from x in X where x.a in (select y.a from y in Y)",
};

struct Config {
  const char* name;
  RewriteOptions options;
};

std::vector<Config> MakeConfigs() {
  std::vector<Config> configs;
  configs.push_back({"full strategy", RewriteOptions()});

  RewriteOptions no_joins;
  no_joins.enable_setcmp = false;
  no_joins.enable_quantifier = false;
  no_joins.enable_map_join = false;
  configs.push_back({"no relational rewrites (opt 1 off)", no_joins});

  RewriteOptions no_unnest;
  no_unnest.enable_unnest_attr = false;
  configs.push_back({"no attribute unnesting (opt 2 off)", no_unnest});

  RewriteOptions no_nestjoin;
  no_nestjoin.grouping = GroupingMode::kNone;
  configs.push_back({"no nestjoin (opt 3 off)", no_nestjoin});

  RewriteOptions no_hoist;
  no_hoist.enable_hoist = false;
  configs.push_back({"no constant hoisting", no_hoist});

  RewriteOptions nothing = bench::AllRewritesOff();
  configs.push_back({"nested loops only (all off)", nothing});
  return configs;
}

std::unique_ptr<Database> MakeDb(int n) {
  SupplierPartConfig sp;
  sp.seed = 29;
  sp.num_parts = n;
  sp.num_suppliers = n / 4;
  sp.parts_per_supplier = 6;
  sp.match_fraction = 0.9;
  sp.red_fraction = 0.2;
  auto db = MakeSupplierPartDatabase(sp);
  XYConfig xy;
  xy.seed = 31;
  xy.x_rows = n;
  xy.y_rows = n;
  xy.key_domain = n;
  N2J_CHECK(AddRandomXY(db.get(), xy).ok());
  return db;
}

bool HasNestedBaseTable(const ExprPtr& e);  // below

/// Process-wide planner-strategy selection for the timed loops
/// (--strategy=cost|heuristic; default heuristic, the engine default).
PlanStrategy& BenchStrategy() {
  static PlanStrategy strategy = PlanStrategy::kHeuristic;
  return strategy;
}

/// Plans `e` with the cost-based planner, aborting on error.
PhysicalPlan MustPlan(const Database& db, const ExprPtr& e) {
  PlannerOptions popts;
  popts.strategy = PlanStrategy::kCost;
  Planner planner(db, popts);
  Result<PhysicalPlan> pp = planner.Plan(e);
  if (!pp.ok()) {
    std::fprintf(stderr, "bench planning failed: %s\n",
                 pp.status().ToString().c_str());
    std::abort();
  }
  return *std::move(pp);
}

/// Evaluates a pre-planned physical plan (annotation-driven dispatch).
Value EvalPlanned(const Database& db, const PhysicalPlan& pp,
                  EvalStats* stats = nullptr) {
  EvalOptions opts;
  opts.plan = &pp.annotations;
  return MustEval(db, pp.root, opts, stats);
}

// The strategy-comparison workload: the join-heavy shapes where the
// physical algorithm and join order actually matter. The 3-table chain
// exercises the Selinger-style reordering DP.
struct StrategyQuery {
  const char* tag;
  const char* oosql;
};

const StrategyQuery kStrategyWorkload[] = {
    {"fig1-semijoin",
     "select x from x in X where exists y in Y : y.a = x.a"},
    {"antijoin",
     "select x from x in X where not exists y in Y : y.a = x.a"},
    {"q4-dangling",
     "select s.eid from s in SUPPLIER where "
     "exists z in s.parts : not exists p in PART : z.pid = p.pid"},
    {"q6-nestjoin",
     "select x from x in X where x.c subseteq "
     "(select (d = y.e) from y in Y where y.a = x.a)"},
    {"chain3-join",
     "select (xa = x.a, we = w.e) from x in X, y in Y, w in W "
     "where x.a = y.a and y.e = w.a"},
};

std::unique_ptr<Database> MakeStrategyDb(int n) {
  auto db = MakeDb(n);
  XYConfig zw;
  zw.seed = 37;
  zw.x_rows = n / 2;
  zw.y_rows = n * 2;
  zw.key_domain = n;
  zw.value_domain = n;
  N2J_CHECK(AddRandomXY(db.get(), zw, "Z", "W").ok());
  return db;
}

void RunStrategyComparison(bench::Trajectory* traj) {
  Section("Planner strategy — paper heuristic vs cost-based "
          "(both recorded in the trajectory)");
  std::printf("%-16s %6s %14s %12s %8s %10s\n", "query", "n",
              "heuristic (ms)", "cost (ms)", "ratio", "reordered");
  for (int n : {256, 1024}) {
    auto db = MakeStrategyDb(n);
    Translator tr(db->schema(), db.get());
    for (const StrategyQuery& q : kStrategyWorkload) {
      Result<TypedExpr> typed = tr.TranslateString(q.oosql);
      N2J_CHECK(typed.ok());
      ExprPtr plan = MustRewrite(*db, typed->expr).expr;
      PhysicalPlan pp = MustPlan(*db, plan);

      // Correctness gate: the two strategies must agree bit-for-bit.
      EvalStats h_stats, c_stats;
      Value heuristic = MustEval(*db, plan, EvalOptions(), &h_stats);
      Value cost = EvalPlanned(*db, pp, &c_stats);
      N2J_CHECK(heuristic == cost);

      double h_ms = TimeMs([&] { MustEval(*db, plan); }, 50);
      double c_ms = TimeMs([&] { EvalPlanned(*db, pp); }, 50);
      std::printf("%-16s %6d %14.3f %12.3f %7.2fx %10s\n", q.tag, n, h_ms,
                  c_ms, c_ms / h_ms, pp.reordered ? "yes" : "no");
      traj->Add(q.tag, "heuristic", n, h_ms, h_stats);
      traj->Add(q.tag, "cost", n, c_ms, c_stats);
    }
  }
  std::printf(
      "\n'cost' plans once (outside the timed loop) and executes the\n"
      "planner's annotated tree; 'heuristic' is the paper's priority\n"
      "strategy with auto physical dispatch. Results are asserted\n"
      "bit-identical before timing.\n");
}

void RunAblation() {
  Section("Section 4 priority strategy — ablation (workload of 8 queries)");
  int n = 400;
  auto db = MakeDb(n);
  Translator tr(db->schema(), db.get());

  std::vector<ExprPtr> queries;
  for (const char* q : kWorkload) {
    Result<TypedExpr> typed = tr.TranslateString(q);
    N2J_CHECK(typed.ok());
    queries.push_back(typed->expr);
  }
  // Reference results from the full strategy.
  std::vector<Value> reference;
  for (const ExprPtr& q : queries) {
    reference.push_back(MustEval(*db, MustRewrite(*db, q).expr));
  }

  std::printf("%-38s %12s %10s %12s\n", "configuration", "total (ms)",
              "residual", "vs full");
  double full_ms = 0;
  for (const Config& config : MakeConfigs()) {
    std::vector<ExprPtr> plans;
    int residual = 0;
    for (const ExprPtr& q : queries) {
      ExprPtr plan = MustRewrite(*db, q, config.options).expr;
      plans.push_back(plan);
      if (HasNestedBaseTable(plan)) ++residual;
    }
    // Correctness under ablation: all configurations agree.
    for (size_t i = 0; i < plans.size(); ++i) {
      N2J_CHECK(MustEval(*db, plans[i]) == reference[i]);
    }
    double total = TimeMs(
        [&] {
          for (const ExprPtr& p : plans) MustEval(*db, p);
        },
        100);
    if (full_ms == 0) full_ms = total;
    std::printf("%-38s %12.2f %10d %11.1fx\n", config.name, total, residual,
                total / full_ms);
  }
  std::printf(
      "\n'residual' counts queries whose final plan still scans a base\n"
      "table inside an iterator parameter (the paper's definition of\n"
      "remaining nested-loop processing).\n");
}

bool HasNestedBaseTable(const ExprPtr& e) {
  bool found = false;
  std::function<void(const ExprPtr&, bool)> walk = [&](const ExprPtr& n,
                                                       bool in_param) {
    if (n->kind() == ExprKind::kGetTable && in_param) {
      found = true;
      return;
    }
    for (size_t i = 0; i < n->num_children(); ++i) {
      bool param = in_param;
      switch (n->kind()) {
        case ExprKind::kMap:
        case ExprKind::kSelect:
        case ExprKind::kQuantifier:
          if (i == 1) param = true;
          break;
        case ExprKind::kJoin:
        case ExprKind::kSemiJoin:
        case ExprKind::kAntiJoin:
          if (i == 2) param = true;
          break;
        case ExprKind::kNestJoin:
          if (i >= 2) param = true;
          break;
        default:
          break;
      }
      walk(n->child(i), param);
    }
  };
  walk(e, false);
  return found;
}

void BM_FullStrategyWorkload(benchmark::State& state) {
  auto db = MakeDb(static_cast<int>(state.range(0)));
  Translator tr(db->schema(), db.get());
  std::vector<ExprPtr> plans;
  for (const char* q : kWorkload) {
    Result<TypedExpr> typed = tr.TranslateString(q);
    N2J_CHECK(typed.ok());
    plans.push_back(MustRewrite(*db, typed->expr).expr);
  }
  // --strategy=cost: plan once up front, time annotation-driven
  // execution (plan time is BM_RewriterItself's concern, not this loop's).
  std::vector<PhysicalPlan> physical;
  if (BenchStrategy() == PlanStrategy::kCost) {
    for (const ExprPtr& p : plans) physical.push_back(MustPlan(*db, p));
  }
  for (auto _ : state) {
    if (BenchStrategy() == PlanStrategy::kCost) {
      for (const PhysicalPlan& pp : physical) {
        benchmark::DoNotOptimize(EvalPlanned(*db, pp));
      }
    } else {
      for (const ExprPtr& p : plans) {
        benchmark::DoNotOptimize(MustEval(*db, p));
      }
    }
  }
}
BENCHMARK(BM_FullStrategyWorkload)->Arg(128)->Arg(512);

void BM_RewriterItself(benchmark::State& state) {
  // Cost of optimization (plan-time, not run-time).
  auto db = MakeDb(64);
  Translator tr(db->schema(), db.get());
  std::vector<ExprPtr> queries;
  for (const char* q : kWorkload) {
    Result<TypedExpr> typed = tr.TranslateString(q);
    N2J_CHECK(typed.ok());
    queries.push_back(typed->expr);
  }
  for (auto _ : state) {
    for (const ExprPtr& q : queries) {
      benchmark::DoNotOptimize(MustRewrite(*db, q).expr);
    }
  }
}
BENCHMARK(BM_RewriterItself);

}  // namespace
}  // namespace n2j

int main(int argc, char** argv) {
  n2j::bench::Trajectory traj("strategy_ablation", &argc, argv);
  // Strip --strategy=cost|heuristic before google-benchmark parses argv.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--strategy=", 11) == 0) {
      const char* v = argv[i] + 11;
      if (std::strcmp(v, "cost") == 0) {
        n2j::BenchStrategy() = n2j::PlanStrategy::kCost;
      } else if (std::strcmp(v, "heuristic") == 0) {
        n2j::BenchStrategy() = n2j::PlanStrategy::kHeuristic;
      } else {
        std::fprintf(stderr, "unknown --strategy=%s (cost|heuristic)\n", v);
        return 1;
      }
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  std::printf("timed-loop strategy: %s\n",
              n2j::PlanStrategyName(n2j::BenchStrategy()));
  n2j::RunAblation();
  n2j::RunStrategyComparison(&traj);
  traj.WriteIfRequested();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
