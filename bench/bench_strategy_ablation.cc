// Experiment: Section 4 — the priority strategy, ablated.
//
// The paper orders its optimization options: (1) rewrite into relational
// join operators, (2) unnest set-valued attributes, (3) use new
// operators (nestjoin), (4) fall back to nested loops. This binary runs
// a mixed workload of the paper's query shapes with each option disabled
// in turn, reporting total wall time and how many queries end up with
// residual nested base tables (i.e. nested-loop execution).

#include <benchmark/benchmark.h>

#include "adl/analysis.h"
#include "bench/bench_util.h"
#include "oosql/translate.h"

namespace n2j {
namespace {

using bench::MustEval;
using bench::MustRewrite;
using bench::Section;
using bench::TimeMs;

const char* kWorkload[] = {
    // Rule 1 shapes.
    "select x from x in X where exists y in Y : y.a = x.a",
    "select x from x in X where not exists y in Y : y.a = x.a",
    "select x.a from x in X where x.a in "
    "(select y.e from y in Y where y.a = x.a)",
    // Attribute unnesting (Example Query 4 shape).
    "select s.eid from s in SUPPLIER where "
    "exists z in s.parts : not exists p in PART : z.pid = p.pid",
    // Quantifier exchange (Example Query 5 shape).
    "select s.sname from s in SUPPLIER where "
    "exists z in s.parts : exists p in PART : "
    "z.pid = p.pid and p.color = \"red\"",
    // Grouping-requiring shapes (nestjoin).
    "select x from x in X where x.c subseteq "
    "(select (d = y.e) from y in Y where y.a = x.a)",
    "select (a = x.a, k = count(select y from y in Y where y.a = x.a)) "
    "from x in X",
    // Constant subquery.
    "select x from x in X where x.a in (select y.a from y in Y)",
};

struct Config {
  const char* name;
  RewriteOptions options;
};

std::vector<Config> MakeConfigs() {
  std::vector<Config> configs;
  configs.push_back({"full strategy", RewriteOptions()});

  RewriteOptions no_joins;
  no_joins.enable_setcmp = false;
  no_joins.enable_quantifier = false;
  no_joins.enable_map_join = false;
  configs.push_back({"no relational rewrites (opt 1 off)", no_joins});

  RewriteOptions no_unnest;
  no_unnest.enable_unnest_attr = false;
  configs.push_back({"no attribute unnesting (opt 2 off)", no_unnest});

  RewriteOptions no_nestjoin;
  no_nestjoin.grouping = GroupingMode::kNone;
  configs.push_back({"no nestjoin (opt 3 off)", no_nestjoin});

  RewriteOptions no_hoist;
  no_hoist.enable_hoist = false;
  configs.push_back({"no constant hoisting", no_hoist});

  RewriteOptions nothing = bench::AllRewritesOff();
  configs.push_back({"nested loops only (all off)", nothing});
  return configs;
}

std::unique_ptr<Database> MakeDb(int n) {
  SupplierPartConfig sp;
  sp.seed = 29;
  sp.num_parts = n;
  sp.num_suppliers = n / 4;
  sp.parts_per_supplier = 6;
  sp.match_fraction = 0.9;
  sp.red_fraction = 0.2;
  auto db = MakeSupplierPartDatabase(sp);
  XYConfig xy;
  xy.seed = 31;
  xy.x_rows = n;
  xy.y_rows = n;
  xy.key_domain = n;
  N2J_CHECK(AddRandomXY(db.get(), xy).ok());
  return db;
}

bool HasNestedBaseTable(const ExprPtr& e);  // below

void RunAblation() {
  Section("Section 4 priority strategy — ablation (workload of 8 queries)");
  int n = 400;
  auto db = MakeDb(n);
  Translator tr(db->schema(), db.get());

  std::vector<ExprPtr> queries;
  for (const char* q : kWorkload) {
    Result<TypedExpr> typed = tr.TranslateString(q);
    N2J_CHECK(typed.ok());
    queries.push_back(typed->expr);
  }
  // Reference results from the full strategy.
  std::vector<Value> reference;
  for (const ExprPtr& q : queries) {
    reference.push_back(MustEval(*db, MustRewrite(*db, q).expr));
  }

  std::printf("%-38s %12s %10s %12s\n", "configuration", "total (ms)",
              "residual", "vs full");
  double full_ms = 0;
  for (const Config& config : MakeConfigs()) {
    std::vector<ExprPtr> plans;
    int residual = 0;
    for (const ExprPtr& q : queries) {
      ExprPtr plan = MustRewrite(*db, q, config.options).expr;
      plans.push_back(plan);
      if (HasNestedBaseTable(plan)) ++residual;
    }
    // Correctness under ablation: all configurations agree.
    for (size_t i = 0; i < plans.size(); ++i) {
      N2J_CHECK(MustEval(*db, plans[i]) == reference[i]);
    }
    double total = TimeMs(
        [&] {
          for (const ExprPtr& p : plans) MustEval(*db, p);
        },
        100);
    if (full_ms == 0) full_ms = total;
    std::printf("%-38s %12.2f %10d %11.1fx\n", config.name, total, residual,
                total / full_ms);
  }
  std::printf(
      "\n'residual' counts queries whose final plan still scans a base\n"
      "table inside an iterator parameter (the paper's definition of\n"
      "remaining nested-loop processing).\n");
}

bool HasNestedBaseTable(const ExprPtr& e) {
  bool found = false;
  std::function<void(const ExprPtr&, bool)> walk = [&](const ExprPtr& n,
                                                       bool in_param) {
    if (n->kind() == ExprKind::kGetTable && in_param) {
      found = true;
      return;
    }
    for (size_t i = 0; i < n->num_children(); ++i) {
      bool param = in_param;
      switch (n->kind()) {
        case ExprKind::kMap:
        case ExprKind::kSelect:
        case ExprKind::kQuantifier:
          if (i == 1) param = true;
          break;
        case ExprKind::kJoin:
        case ExprKind::kSemiJoin:
        case ExprKind::kAntiJoin:
          if (i == 2) param = true;
          break;
        case ExprKind::kNestJoin:
          if (i >= 2) param = true;
          break;
        default:
          break;
      }
      walk(n->child(i), param);
    }
  };
  walk(e, false);
  return found;
}

void BM_FullStrategyWorkload(benchmark::State& state) {
  auto db = MakeDb(static_cast<int>(state.range(0)));
  Translator tr(db->schema(), db.get());
  std::vector<ExprPtr> plans;
  for (const char* q : kWorkload) {
    Result<TypedExpr> typed = tr.TranslateString(q);
    N2J_CHECK(typed.ok());
    plans.push_back(MustRewrite(*db, typed->expr).expr);
  }
  for (auto _ : state) {
    for (const ExprPtr& p : plans) benchmark::DoNotOptimize(MustEval(*db, p));
  }
}
BENCHMARK(BM_FullStrategyWorkload)->Arg(128)->Arg(512);

void BM_RewriterItself(benchmark::State& state) {
  // Cost of optimization (plan-time, not run-time).
  auto db = MakeDb(64);
  Translator tr(db->schema(), db.get());
  std::vector<ExprPtr> queries;
  for (const char* q : kWorkload) {
    Result<TypedExpr> typed = tr.TranslateString(q);
    N2J_CHECK(typed.ok());
    queries.push_back(typed->expr);
  }
  for (auto _ : state) {
    for (const ExprPtr& q : queries) {
      benchmark::DoNotOptimize(MustRewrite(*db, q).expr);
    }
  }
}
BENCHMARK(BM_RewriterItself);

}  // namespace
}  // namespace n2j

int main(int argc, char** argv) {
  n2j::RunAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
