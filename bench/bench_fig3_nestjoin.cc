// Experiment: Figure 3 — "Nestjoin Example".
//
// Reproduces the figure's equijoin-on-the-second-attribute nestjoin on
// the paper's exact X and Y, then measures the nestjoin against the
// plans it replaces: unnest–join–nest (via relational grouping) and
// tuple-at-a-time nested loops, across data sizes and group fan-outs.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace n2j {
namespace {

using bench::MustEval;
using bench::Section;
using bench::TimeMs;

void ReproduceFigure3() {
  Section("Figure 3: the nestjoin on the paper's exact data");
  auto db = MakeFigure3Database();
  Value x = MustEval(*db, Expr::Table("X"));
  Value y = MustEval(*db, Expr::Table("Y"));
  std::printf("X = %s\n", x.ToString().c_str());
  std::printf("Y = %s\n\n", y.ToString().c_str());

  ExprPtr nj = Expr::NestJoin(
      Expr::Table("X"), Expr::Table("Y"), "x", "y",
      Expr::Eq(Expr::Access(Expr::Var("x"), "b"),
               Expr::Access(Expr::Var("y"), "d")),
      "ys");
  std::printf("X ⊣_{x,y : x.b = y.d ; ys} Y:\n");
  Value result = MustEval(*db, nj);
  for (const Value& t : result.elements()) {
    std::printf("  %s\n", t.ToString().c_str());
  }
  // Paper: (1,1) and (2,1) each group {(1,1),(2,1)}; (3,3) keeps ∅.
  N2J_CHECK(result.set_size() == 3);
  for (const Value& t : result.elements()) {
    int64_t a = t.FindField("a")->int_value();
    size_t g = t.FindField("ys")->set_size();
    N2J_CHECK((a == 3) == (g == 0));
  }
  std::printf(
      "\nEach left tuple is concatenated with the SET of matching right\n"
      "tuples; the dangling (a=3, b=3) keeps ys = {} instead of being\n"
      "lost — grouping during join without the Complex Object bug.\n");
}

/// Builds X(id, k) and Y(k2, w) where each x matches `fanout` y's.
std::unique_ptr<Database> MakeJoinDb(int n, int fanout, uint64_t seed) {
  auto db = std::make_unique<Database>();
  N2J_CHECK(db->CreateTable("XL", Type::Tuple({{"id", Type::Int()},
                                               {"k", Type::Int()}}))
                .ok());
  N2J_CHECK(db->CreateTable("YR", Type::Tuple({{"k2", Type::Int()},
                                               {"w", Type::Int()}}))
                .ok());
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    N2J_CHECK(db->Insert("XL", Value::Tuple({Field("id", Value::Int(i)),
                                             Field("k", Value::Int(i))}))
                  .ok());
    for (int j = 0; j < fanout; ++j) {
      N2J_CHECK(
          db->Insert("YR",
                     Value::Tuple({Field("k2", Value::Int(i)),
                                   Field("w", Value::Int(rng.Uniform(
                                                  0, 1000)))}))
              .ok());
    }
  }
  return db;
}

ExprPtr NestJoinPlan() {
  return Expr::NestJoin(Expr::Table("XL"), Expr::Table("YR"), "x", "y",
                        Expr::Eq(Expr::Access(Expr::Var("x"), "k"),
                                 Expr::Access(Expr::Var("y"), "k2")),
                        "ys");
}

/// The unnest–join–nest equivalent: ν(XL ⋈ YR) — requires re-adding
/// dangling tuples to be correct, which plain ν cannot do.
ExprPtr JoinNestPlan() {
  return Expr::Nest(
      Expr::Join(Expr::Table("XL"), Expr::Table("YR"), "x", "y",
                 Expr::Eq(Expr::Access(Expr::Var("x"), "k"),
                          Expr::Access(Expr::Var("y"), "k2"))),
      {"k2", "w"}, "ys");
}

void SweepFanout() {
  Section("Nestjoin vs join+nest vs nested loop (|X| = 300, varying fanout)");
  std::printf("%8s %16s %16s %18s\n", "fanout", "nestjoin (ms)",
              "join+nest (ms)", "nested loop (ms)");
  for (int fanout : {1, 4, 16, 64}) {
    auto db = MakeJoinDb(300, fanout, 11);
    ExprPtr nj = NestJoinPlan();
    ExprPtr gp = JoinNestPlan();
    EvalOptions nl;
    nl.use_hash_joins = false;
    double nj_ms = TimeMs([&] { MustEval(*db, nj); }, 40);
    double gp_ms = TimeMs([&] { MustEval(*db, gp); }, 40);
    double nl_ms = TimeMs([&] { MustEval(*db, nj, nl); }, 40);
    std::printf("%8d %16.3f %16.3f %18.3f\n", fanout, nj_ms, gp_ms, nl_ms);
  }
  std::printf(
      "\njoin+nest materializes |X|·fanout concatenated tuples before\n"
      "regrouping; the nestjoin emits each group directly (one pass,\n"
      "no intermediate duplication) — and is the only one of the three\n"
      "join-based plans that keeps dangling left tuples.\n");
}

void BM_NestJoinHash(benchmark::State& state) {
  auto db = MakeJoinDb(static_cast<int>(state.range(0)), 8, 3);
  ExprPtr nj = NestJoinPlan();
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(*db, nj));
}
BENCHMARK(BM_NestJoinHash)->Arg(128)->Arg(512)->Arg(2048);

void BM_NestJoinNestedLoop(benchmark::State& state) {
  auto db = MakeJoinDb(static_cast<int>(state.range(0)), 8, 3);
  ExprPtr nj = NestJoinPlan();
  EvalOptions nl;
  nl.use_hash_joins = false;
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(*db, nj, nl));
}
BENCHMARK(BM_NestJoinNestedLoop)->Arg(128)->Arg(512);

void BM_JoinThenNest(benchmark::State& state) {
  auto db = MakeJoinDb(static_cast<int>(state.range(0)), 8, 3);
  ExprPtr gp = JoinNestPlan();
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(*db, gp));
}
BENCHMARK(BM_JoinThenNest)->Arg(128)->Arg(512)->Arg(2048);

}  // namespace
}  // namespace n2j

int main(int argc, char** argv) {
  n2j::ReproduceFigure3();
  n2j::SweepFanout();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
