// Experiment: Figure 1 — "Nesting Involving Set-Valued Attribute".
//
// The figure's query σ[x : x.c ⊆ σ[y : x.a = y.a](Y)](X) is the paper's
// canonical example of a nested query that (a) cannot be unnested into a
// flat relational join (Table 1: ⊆ needs two quantifiers), (b) is
// mishandled by relational grouping (Figure 2), and (c) is exactly what
// the nestjoin was defined for. This binary walks the full decision
// procedure on the query and sweeps the three execution strategies.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace n2j {
namespace {

using bench::MustEval;
using bench::MustEvalModesAgree;
using bench::MustRewrite;
using bench::Section;
using bench::TimeMs;

ExprPtr Fig1Query() {
  ExprPtr subq = Expr::Map(
      "y", Expr::TupleConstruct({"d"}, {Expr::Access(Expr::Var("y"), "e")}),
      Expr::Select("y",
                   Expr::Eq(Expr::Access(Expr::Var("x"), "a"),
                            Expr::Access(Expr::Var("y"), "a")),
                   Expr::Table("Y")));
  return Expr::Select(
      "x",
      Expr::Bin(BinOp::kSubsetEq, Expr::Access(Expr::Var("x"), "c"), subq),
      Expr::Table("X"));
}

std::unique_ptr<Database> MakeDb(int rows, uint64_t seed) {
  auto db = std::make_unique<Database>();
  XYConfig config;
  config.seed = seed;
  config.x_rows = rows;
  config.y_rows = rows;
  config.key_domain = rows / 2 + 1;
  config.empty_set_prob = 0.2;
  N2J_CHECK(AddRandomXY(db.get(), config).ok());
  return db;
}

void Walkthrough() {
  Section("Figure 1: the nested query and the optimizer's decision");
  auto db = MakeDb(6, 2);
  ExprPtr q = Fig1Query();
  std::printf("query:\n  %s\n\n", AlgebraStr(q).c_str());
  std::printf(
      "option 1 (rewrite to relational joins): ⊆ expands to two\n"
      "quantifiers over different operands (Table 1) — not unnestable.\n");
  std::printf(
      "option 2 (unnest the attribute): the result needs c, and ⊆ is not\n"
      "existential — rejected.\n");
  std::printf(
      "option 3 (grouping): P(x, ∅) = %s — not provably false, the\n"
      "grouping plan would lose dangling tuples — rejected.\n",
      TriBoolName(
          StaticValueWithEmptySubquery(q->child(1), q->child(1)->child(1))));

  RewriteResult r = MustRewrite(*db, q);
  std::printf("\nchosen plan (nestjoin):\n  %s\n",
              AlgebraStr(r.expr).c_str());
  std::printf("\nrules fired:\n%s", r.TraceToString().c_str());
  Value truth = MustEval(*db, q);
  N2J_CHECK(truth == MustEval(*db, r.expr));
  std::printf("result (%zu tuples) verified against nested loops.\n",
              truth.set_size());
}

void Sweep(bench::Trajectory* traj) {
  Section("Scaling: nested loop vs nestjoin plan for the Figure 1 query");
  std::printf("%8s %16s %16s %10s %22s\n", "|X|=|Y|", "nested (ms)",
              "nestjoin (ms)", "speedup", "pred-evals nested/nj");
  for (int n : {50, 100, 200, 400, 800, 1600}) {
    auto db = MakeDb(n, 5);
    ExprPtr q = Fig1Query();
    ExprPtr plan = MustRewrite(*db, q).expr;
    EvalStats sn, sj;
    Value a = MustEvalModesAgree(*db, q, EvalOptions(), &sn);
    Value b = MustEvalModesAgree(*db, plan, EvalOptions(), &sj);
    N2J_CHECK(a == b);
    double nested_ms = TimeMs([&] { MustEval(*db, q); }, 40);
    double nj_ms = TimeMs([&] { MustEval(*db, plan); }, 40);
    traj->Add("fig1", "nested", n, nested_ms, sn);
    traj->Add("fig1", "nestjoin", n, nj_ms, sj);
    std::printf("%8d %16.3f %16.3f %9.1fx %15llu/%llu\n", n, nested_ms,
                nj_ms, nested_ms / nj_ms,
                static_cast<unsigned long long>(sn.predicate_evals),
                static_cast<unsigned long long>(sj.predicate_evals));
  }
  std::printf(
      "\nThe nested loop evaluates the subquery |X| times (O(|X|·|Y|));\n"
      "the nestjoin builds one hash table on Y and probes each x once.\n");
}

// Trace-on pass for the JSON operator profile (the timed loops above
// stay untraced). The 4-thread nestjoin plan also emits the Chrome
// trace when --trace=<path> was given.
void ProfileRuns(bench::Trajectory* traj) {
  auto db = MakeDb(800, 5);
  ExprPtr q = Fig1Query();
  ExprPtr plan = MustRewrite(*db, q).expr;
  bench::ProfileOnce(traj, *db, q, "fig1-profile", "nested", 800);
  EvalOptions mt;
  mt.num_threads = 4;
  bench::ProfileOnce(traj, *db, plan, "fig1-profile", "nestjoin-4t", 800,
                     mt, /*write_chrome_trace=*/true);
}

void BM_Fig1NestedLoop(benchmark::State& state) {
  auto db = MakeDb(static_cast<int>(state.range(0)), 5);
  ExprPtr q = Fig1Query();
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(*db, q));
}
BENCHMARK(BM_Fig1NestedLoop)->Arg(128)->Arg(512);

void BM_Fig1NestJoin(benchmark::State& state) {
  auto db = MakeDb(static_cast<int>(state.range(0)), 5);
  ExprPtr plan = MustRewrite(*db, Fig1Query()).expr;
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(*db, plan));
}
BENCHMARK(BM_Fig1NestJoin)->Arg(128)->Arg(512);

}  // namespace
}  // namespace n2j

int main(int argc, char** argv) {
  n2j::bench::Trajectory traj("fig1_nested_query", &argc, argv);
  n2j::Walkthrough();
  n2j::Sweep(&traj);
  n2j::ProfileRuns(&traj);
  traj.WriteIfRequested();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
