// Experiment: Table 2 — "Rewriting Predicates".
//
// Each row of Table 2 is a predicate form that can be rewritten into a
// (negated) existential quantification and from there into an antijoin:
//
//     Y' = ∅             →  ¬∃y∈Y'·true
//     count(Y') = 0      →  ¬∃y∈Y'·true
//     x.c ∩ Y' = ∅       →  ¬∃y∈Y'·y∈x.c
//     ∀z∈x.c·z ⊇ Y'      →  ¬∃y∈Y'·∃z∈x.c·y∉z   (quantifier exchange)
//
// The binary shows, per row: the optimizer's output plan, a correctness
// check against nested loops, and the cost of both executions.

#include <benchmark/benchmark.h>

#include "adl/analysis.h"
#include "bench/bench_util.h"

namespace n2j {
namespace {

using bench::AllRewritesOff;
using bench::MustEval;
using bench::MustRewrite;
using bench::Section;
using bench::TimeMs;

/// W(k, c : {{int}}) — c is a set of sets for row 4 — plus V(v).
std::unique_ptr<Database> MakeDb(int n, int m, uint64_t seed) {
  auto db = std::make_unique<Database>();
  N2J_CHECK(
      db->CreateTable(
            "W", Type::Tuple({{"k", Type::Int()},
                              {"c", Type::Set(Type::Int())},
                              {"cc", Type::Set(Type::Set(Type::Int()))}}))
          .ok());
  N2J_CHECK(db->CreateTable("V", Type::Tuple({{"v", Type::Int()}})).ok());
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    std::vector<Value> c;
    for (int j = 0, e = static_cast<int>(rng.Uniform(0, 4)); j < e; ++j) {
      c.push_back(Value::Int(rng.Uniform(0, 9)));
    }
    std::vector<Value> cc;
    for (int j = 0, e = static_cast<int>(rng.Uniform(0, 3)); j < e; ++j) {
      std::vector<Value> inner;
      for (int l = 0, f = static_cast<int>(rng.Uniform(1, 4)); l < f; ++l) {
        inner.push_back(Value::Int(rng.Uniform(0, 9)));
      }
      cc.push_back(Value::Set(std::move(inner)));
    }
    N2J_CHECK(db->Insert("W", Value::Tuple({Field("k", Value::Int(i % 10)),
                                            Field("c", Value::Set(c)),
                                            Field("cc", Value::Set(cc))}))
                  .ok());
  }
  for (int i = 0; i < m; ++i) {
    N2J_CHECK(
        db->Insert("V", Value::Tuple({Field("v", Value::Int(i % 8))})).ok());
  }
  return db;
}

/// Correlated subquery Y'(x) over base table V.
ExprPtr Yprime() {
  return Expr::Map(
      "y", Expr::Access(Expr::Var("y"), "v"),
      Expr::Select("y",
                   Expr::Eq(Expr::Bin(BinOp::kMod,
                                      Expr::Access(Expr::Var("y"), "v"),
                                      Expr::Const(Value::Int(4))),
                            Expr::Bin(BinOp::kMod,
                                      Expr::Access(Expr::Var("x"), "k"),
                                      Expr::Const(Value::Int(4)))),
                   Expr::Table("V")));
}

struct Row {
  const char* display;
  ExprPtr pred;
};

std::vector<Row> MakeRows() {
  ExprPtr empty = Expr::Const(Value::EmptySet());
  std::vector<Row> rows;
  rows.push_back({"Y' = ∅", Expr::Eq(Yprime(), empty)});
  rows.push_back({"count(Y') = 0",
                  Expr::Eq(Expr::Agg(AggKind::kCount, Yprime()),
                           Expr::Const(Value::Int(0)))});
  rows.push_back(
      {"x.c ∩ Y' = ∅",
       Expr::Eq(Expr::Bin(BinOp::kIntersectOp,
                          Expr::Access(Expr::Var("x"), "c"), Yprime()),
                empty)});
  rows.push_back(
      {"∀z∈x.cc·z ⊇ Y'",
       Expr::Quant(QuantKind::kForall, "z",
                   Expr::Access(Expr::Var("x"), "cc"),
                   Expr::Bin(BinOp::kSupsetEq, Expr::Var("z"), Yprime()))});
  return rows;
}

void PrintTable2() {
  Section("Table 2: Rewriting Predicates — optimizer output per row");
  auto db = MakeDb(120, 60, 5);
  for (const Row& row : MakeRows()) {
    ExprPtr q = Expr::Select("x", row.pred, Expr::Table("W"));
    RewriteResult rewritten = MustRewrite(*db, q);
    Value a = MustEval(*db, q);
    Value b = MustEval(*db, rewritten.expr);
    std::printf("\npredicate:  %s\n", row.display);
    std::printf("plan:       %s\n", AlgebraStr(rewritten.expr).c_str());
    std::printf("rules:      ");
    for (const RuleApplication& rule : rewritten.trace) {
      std::printf("%s ", rule.rule.c_str());
    }
    std::printf("\nequivalent: %s (%zu tuples)\n",
                a == b ? "yes" : "NO!", b.set_size());
    N2J_CHECK(a == b);
  }
}

void PrintCosts() {
  Section("Costs: nested-loop vs rewritten plans (|W| = |V| = 600)");
  auto db = MakeDb(600, 600, 9);
  std::printf("%-18s %14s %14s %9s %18s\n", "predicate", "nested (ms)",
              "rewritten (ms)", "speedup", "pred-evals n/r");
  for (const Row& row : MakeRows()) {
    ExprPtr q = Expr::Select("x", row.pred, Expr::Table("W"));
    RewriteResult rewritten = MustRewrite(*db, q);
    EvalStats sn, sr;
    MustEval(*db, q, EvalOptions(), &sn);
    MustEval(*db, rewritten.expr, EvalOptions(), &sr);
    double naive_ms = TimeMs([&] { MustEval(*db, q); }, 30);
    double plan_ms = TimeMs([&] { MustEval(*db, rewritten.expr); }, 30);
    std::printf("%-20s %12.3f %14.3f %8.1fx %10llu/%llu\n", row.display,
                naive_ms, plan_ms, naive_ms / plan_ms,
                static_cast<unsigned long long>(sn.predicate_evals),
                static_cast<unsigned long long>(sr.predicate_evals));
  }
}

void BM_EmptySubqueryNestedLoop(benchmark::State& state) {
  auto db = MakeDb(static_cast<int>(state.range(0)),
                   static_cast<int>(state.range(0)), 2);
  ExprPtr q = Expr::Select("x", MakeRows()[0].pred, Expr::Table("W"));
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(*db, q));
}
BENCHMARK(BM_EmptySubqueryNestedLoop)->Arg(64)->Arg(256)->Arg(1024);

void BM_EmptySubqueryAntiJoin(benchmark::State& state) {
  auto db = MakeDb(static_cast<int>(state.range(0)),
                   static_cast<int>(state.range(0)), 2);
  ExprPtr q = MustRewrite(
                  *db, Expr::Select("x", MakeRows()[0].pred,
                                    Expr::Table("W")))
                  .expr;
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(*db, q));
}
BENCHMARK(BM_EmptySubqueryAntiJoin)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace n2j

int main(int argc, char** argv) {
  n2j::PrintTable2();
  n2j::PrintCosts();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
