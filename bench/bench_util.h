#ifndef N2J_BENCH_BENCH_UTIL_H_
#define N2J_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment binaries. Each bench reproduces one
// table or figure of the paper: it prints the paper-shaped table first
// (the qualitative reproduction) and then registers google-benchmark
// timings for the quantitative sweeps.

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "adl/printer.h"
#include "common/status.h"
#include "core/engine.h"
#include "exec/eval.h"
#include "rewrite/rewriter.h"
#include "storage/datagen.h"

namespace n2j {
namespace bench {

/// Runs `fn` repeatedly until ~min_ms of wall time accumulated; returns
/// milliseconds per execution.
inline double TimeMs(const std::function<void()>& fn, double min_ms = 50.0) {
  using Clock = std::chrono::steady_clock;
  // Warm-up.
  fn();
  int iters = 1;
  for (;;) {
    auto start = Clock::now();
    for (int i = 0; i < iters; ++i) fn();
    double elapsed =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    if (elapsed >= min_ms || iters > (1 << 20)) {
      return elapsed / iters;
    }
    iters *= 2;
  }
}

/// Evaluates `e` against `db`, aborting on error (bench inputs are fixed).
inline Value MustEval(const Database& db, const ExprPtr& e,
                      EvalOptions opts = EvalOptions(),
                      EvalStats* stats = nullptr) {
  Evaluator ev(db, opts);
  Result<Value> r = ev.Eval(e);
  if (!r.ok()) {
    std::fprintf(stderr, "bench eval failed: %s\nexpr: %s\n",
                 r.status().ToString().c_str(), AlgebraStr(e).c_str());
    std::abort();
  }
  if (stats != nullptr) *stats = ev.stats();
  return *r;
}

/// Rewrites with options, aborting on error.
inline RewriteResult MustRewrite(const Database& db, const ExprPtr& e,
                                 RewriteOptions opts = RewriteOptions()) {
  Rewriter rw(db.schema(), &db, opts);
  Result<RewriteResult> r = rw.Rewrite(e);
  if (!r.ok()) {
    std::fprintf(stderr, "bench rewrite failed: %s\n",
                 r.status().ToString().c_str());
    std::abort();
  }
  return *r;
}

/// RewriteOptions with every pass disabled (pure nested-loop execution).
inline RewriteOptions AllRewritesOff() {
  RewriteOptions off;
  off.enable_simplify = true;  // keep the translation cleanups
  off.enable_setcmp = false;
  off.enable_quantifier = false;
  off.enable_map_join = false;
  off.enable_unnest_attr = false;
  off.enable_hoist = false;
  off.grouping = GroupingMode::kNone;
  return off;
}

/// Prints a horizontal rule and a section heading.
inline void Section(const std::string& title) {
  std::printf("\n%s\n", std::string(76, '-').c_str());
  std::printf("%s\n%s\n", title.c_str(), std::string(76, '-').c_str());
}

}  // namespace bench
}  // namespace n2j

#endif  // N2J_BENCH_BENCH_UTIL_H_
