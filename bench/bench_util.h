#ifndef N2J_BENCH_BENCH_UTIL_H_
#define N2J_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment binaries. Each bench reproduces one
// table or figure of the paper: it prints the paper-shaped table first
// (the qualitative reproduction) and then registers google-benchmark
// timings for the quantitative sweeps.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "adl/printer.h"
#include "common/status.h"
#include "common/str_util.h"
#include "core/engine.h"
#include "exec/eval.h"
#include "obs/chrome_trace.h"
#include "obs/querylog.h"
#include "obs/trace.h"
#include "rewrite/rewriter.h"
#include "storage/datagen.h"

namespace n2j {
namespace bench {

/// Runs `fn` repeatedly until ~min_ms of wall time accumulated; returns
/// milliseconds per execution.
inline double TimeMs(const std::function<void()>& fn, double min_ms = 50.0) {
  using Clock = std::chrono::steady_clock;
  // Warm-up.
  fn();
  int iters = 1;
  for (;;) {
    auto start = Clock::now();
    for (int i = 0; i < iters; ++i) fn();
    double elapsed =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    if (elapsed >= min_ms || iters > (1 << 20)) {
      return elapsed / iters;
    }
    iters *= 2;
  }
}

/// Engine selection for every timed loop: --mode=compiled (the default)
/// runs lambdas on the bytecode VM, --mode=interp pins the tree
/// interpreter. A process-wide toggle so the same binary measures both
/// engines on identical plans.
inline bool& BenchCompiledMode() {
  static bool compiled = true;
  return compiled;
}

inline const char* BenchModeName() {
  return BenchCompiledMode() ? "compiled" : "interp";
}

/// Evaluates `e` against `db`, aborting on error (bench inputs are fixed).
/// The engine is forced to the process-wide --mode selection.
inline Value MustEval(const Database& db, const ExprPtr& e,
                      EvalOptions opts = EvalOptions(),
                      EvalStats* stats = nullptr) {
  opts.compiled = BenchCompiledMode();
  Evaluator ev(db, opts);
  Result<Value> r = ev.Eval(e);
  if (!r.ok()) {
    std::fprintf(stderr, "bench eval failed: %s\nexpr: %s\n",
                 r.status().ToString().c_str(), AlgebraStr(e).c_str());
    std::abort();
  }
  if (stats != nullptr) *stats = ev.stats();
  return *r;
}

/// Cross-engine equivalence gate: evaluates `e` under both the bytecode
/// VM and the tree interpreter and aborts unless the results agree.
/// Benches call this once per (plan, options) cell before timing, so the
/// timed loops stay single-engine. Returns the selected mode's result
/// and (optionally) its counters.
inline Value MustEvalModesAgree(const Database& db, const ExprPtr& e,
                                EvalOptions opts = EvalOptions(),
                                EvalStats* stats = nullptr) {
  EvalOptions compiled_opts = opts;
  compiled_opts.compiled = true;
  EvalOptions interp_opts = opts;
  interp_opts.compiled = false;
  Evaluator compiled_ev(db, compiled_opts);
  Evaluator interp_ev(db, interp_opts);
  Result<Value> compiled_r = compiled_ev.Eval(e);
  Result<Value> interp_r = interp_ev.Eval(e);
  if (!compiled_r.ok() || !interp_r.ok()) {
    std::fprintf(stderr,
                 "bench eval failed (compiled: %s / interp: %s)\nexpr: %s\n",
                 compiled_r.status().ToString().c_str(),
                 interp_r.status().ToString().c_str(), AlgebraStr(e).c_str());
    std::abort();
  }
  if (*compiled_r != *interp_r) {
    std::fprintf(stderr, "compiled and interpreted results differ\nexpr: %s\n",
                 AlgebraStr(e).c_str());
    std::abort();
  }
  if (stats != nullptr) {
    *stats = BenchCompiledMode() ? compiled_ev.stats() : interp_ev.stats();
  }
  return BenchCompiledMode() ? std::move(compiled_r).value()
                             : std::move(interp_r).value();
}

/// Rewrites with options, aborting on error.
inline RewriteResult MustRewrite(const Database& db, const ExprPtr& e,
                                 RewriteOptions opts = RewriteOptions()) {
  Rewriter rw(db.schema(), &db, opts);
  Result<RewriteResult> r = rw.Rewrite(e);
  if (!r.ok()) {
    std::fprintf(stderr, "bench rewrite failed: %s\n",
                 r.status().ToString().c_str());
    std::abort();
  }
  return *r;
}

/// RewriteOptions with every pass disabled (pure nested-loop execution).
inline RewriteOptions AllRewritesOff() {
  RewriteOptions off;
  off.enable_simplify = true;  // keep the translation cleanups
  off.enable_setcmp = false;
  off.enable_quantifier = false;
  off.enable_map_join = false;
  off.enable_unnest_attr = false;
  off.enable_hoist = false;
  off.grouping = GroupingMode::kNone;
  return off;
}

/// Prints a horizontal rule and a section heading.
inline void Section(const std::string& title) {
  std::printf("\n%s\n", std::string(76, '-').c_str());
  std::printf("%s\n%s\n", title.c_str(), std::string(76, '-').c_str());
}

/// One measured cell of a benchmark sweep: (sweep, variant, n) with the
/// wall-clock milliseconds and the operator counters of one evaluation.
struct TrajectoryPoint {
  std::string sweep;
  std::string variant;
  int n = 0;
  double ms = 0.0;
  EvalStats stats;
};

/// One aggregated operator line of a traced (profiled) evaluation: all
/// spans sharing (op, detail) within one cell. Time is the *exclusive*
/// wall time — the sum over the cell's operator lines is the cell's
/// whole evaluation. Collected from a separate trace-on run; the
/// trace-off wall time in TrajectoryPoint stays the headline number.
struct OperatorProfileEntry {
  std::string sweep;
  std::string variant;
  int n = 0;
  std::string op;  // "antijoin [hash keys=1]"
  uint64_t count = 0;
  double exclusive_ms = 0.0;
  uint64_t rows_out = 0;
};

/// Collects sweep points and, when the binary was invoked with
/// --json=<path>, writes them out as a JSON document — the machine-
/// readable trajectory CI archives next to the human-readable tables.
/// Without the flag, recording is kept but nothing is written.
class Trajectory {
 public:
  /// Scans argv for --json=<path>, --trace=<path> (Chrome-trace output
  /// of the bench's representative profiled run), --querylog=<path>
  /// (flight-recorder JSONL dump on WriteIfRequested),
  /// --recorder-gate (run the bench's recorder-overhead assertion, if it
  /// defines one) and --mode=compiled|interp, stripping all of them so
  /// google-benchmark's own argument parser never sees them.
  Trajectory(std::string bench_name, int* argc, char** argv)
      : bench_(std::move(bench_name)) {
    int kept = 1;
    for (int i = 1; i < *argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--json=", 7) == 0) {
        path_ = arg + 7;
      } else if (std::strncmp(arg, "--trace=", 8) == 0) {
        trace_path_ = arg + 8;
      } else if (std::strncmp(arg, "--querylog=", 11) == 0) {
        querylog_path_ = arg + 11;
      } else if (std::strcmp(arg, "--recorder-gate") == 0) {
        recorder_gate_ = true;
      } else if (std::strncmp(arg, "--mode=", 7) == 0) {
        if (std::strcmp(arg + 7, "compiled") == 0) {
          BenchCompiledMode() = true;
        } else if (std::strcmp(arg + 7, "interp") == 0) {
          BenchCompiledMode() = false;
        } else {
          std::fprintf(stderr, "unknown --mode=%s (compiled|interp)\n",
                       arg + 7);
          std::abort();
        }
      } else {
        argv[kept++] = argv[i];
      }
    }
    *argc = kept;
  }

  void Add(const std::string& sweep, const std::string& variant, int n,
           double ms, const EvalStats& stats = EvalStats()) {
    points_.push_back(TrajectoryPoint{sweep, variant, n, ms, stats});
  }

  /// Where --trace=<path> asked the Chrome trace to go (empty = off).
  const std::string& chrome_trace_path() const { return trace_path_; }

  /// Whether --recorder-gate asked for the flight-recorder overhead
  /// assertion (bench_join_algorithms defines it).
  bool recorder_gate() const { return recorder_gate_; }

  /// Folds one traced evaluation's span tree into per-operator lines:
  /// spans sharing (op, detail) aggregate into count / exclusive-ms /
  /// rows-out, first-seen order. The entries ride along in the JSON
  /// document under "operator_profile".
  void AddOperatorProfile(const std::string& sweep,
                          const std::string& variant, int n,
                          const TraceCollector& tc) {
    std::vector<OperatorProfileEntry> local;
    for (const TraceSpan& s : tc.spans()) {
      std::string label = s.op;
      if (!s.detail.empty()) label += " [" + s.detail + "]";
      OperatorProfileEntry* entry = nullptr;
      for (OperatorProfileEntry& e : local) {
        if (e.op == label) {
          entry = &e;
          break;
        }
      }
      if (entry == nullptr) {
        local.push_back(OperatorProfileEntry{sweep, variant, n, label, 0,
                                             0.0, 0});
        entry = &local.back();
      }
      ++entry->count;
      entry->exclusive_ms += static_cast<double>(s.exclusive_ns()) / 1e6;
      entry->rows_out += s.rows_out;
    }
    profile_.insert(profile_.end(), local.begin(), local.end());
  }

  /// Writes the JSON file when --json=<path> was given, and the flight-
  /// recorder dump when --querylog=<path> was. Aborts on I/O failure: a
  /// silently missing CI artifact is worse than a red job.
  void WriteIfRequested() const {
    DumpQuerylogIfRequested();
    if (path_.empty()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", path_.c_str());
      std::abort();
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"mode\": \"%s\",\n"
                 "  \"points\": [\n",
                 bench_.c_str(), BenchModeName());
    for (size_t i = 0; i < points_.size(); ++i) {
      const TrajectoryPoint& p = points_[i];
      const EvalStats& s = p.stats;
      std::fprintf(
          f,
          "    {\"sweep\": \"%s\", \"variant\": \"%s\", \"n\": %d, "
          "\"ms\": %.6f, \"stats\": {\"tuples_scanned\": %llu, "
          "\"predicate_evals\": %llu, \"hash_inserts\": %llu, "
          "\"hash_probes\": %llu, \"rows_sorted\": %llu, "
          "\"index_probes\": %llu, \"pnhl_partitions\": %llu, "
          "\"derefs\": %llu, \"nodes_evaluated\": %llu, "
          "\"compiled_evals\": %llu, \"interp_fallback_evals\": %llu, "
          "\"joins_nested_loop\": %llu, \"joins_hash\": %llu, "
          "\"joins_sortmerge\": %llu, \"joins_index\": %llu, "
          "\"joins_membership\": %llu}}%s\n",
          JsonEscape(p.sweep).c_str(), JsonEscape(p.variant).c_str(), p.n,
          p.ms,
          static_cast<unsigned long long>(s.tuples_scanned),
          static_cast<unsigned long long>(s.predicate_evals),
          static_cast<unsigned long long>(s.hash_inserts),
          static_cast<unsigned long long>(s.hash_probes),
          static_cast<unsigned long long>(s.rows_sorted),
          static_cast<unsigned long long>(s.index_probes),
          static_cast<unsigned long long>(s.pnhl_partitions),
          static_cast<unsigned long long>(s.derefs),
          static_cast<unsigned long long>(s.nodes_evaluated),
          static_cast<unsigned long long>(s.compiled_evals),
          static_cast<unsigned long long>(s.interp_fallback_evals),
          static_cast<unsigned long long>(s.joins_nested_loop),
          static_cast<unsigned long long>(s.joins_hash),
          static_cast<unsigned long long>(s.joins_sortmerge),
          static_cast<unsigned long long>(s.joins_index),
          static_cast<unsigned long long>(s.joins_membership),
          i + 1 < points_.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"operator_profile\": [\n");
    for (size_t i = 0; i < profile_.size(); ++i) {
      const OperatorProfileEntry& e = profile_[i];
      std::fprintf(
          f,
          "    {\"sweep\": \"%s\", \"variant\": \"%s\", \"n\": %d, "
          "\"op\": \"%s\", \"count\": %llu, \"exclusive_ms\": %.6f, "
          "\"rows_out\": %llu}%s\n",
          JsonEscape(e.sweep).c_str(), JsonEscape(e.variant).c_str(), e.n,
          // Operator labels carry span detail — predicate text with
          // string literals ("sname = \"s1\"") — so they MUST be escaped
          // or the document is invalid JSON.
          JsonEscape(e.op).c_str(),
          static_cast<unsigned long long>(e.count), e.exclusive_ms,
          static_cast<unsigned long long>(e.rows_out),
          i + 1 < profile_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %zu trajectory points (%zu profiled operator "
                "lines) to %s\n",
                points_.size(), profile_.size(), path_.c_str());
  }

  /// Dumps the flight recorder when --querylog=<path> was given. Same
  /// abort-on-I/O-failure policy as the trajectory JSON. Call after the
  /// sweeps (benches that go through QueryEngine populate the recorder;
  /// direct-Evaluator benches dump whatever engine runs they did make).
  void DumpQuerylogIfRequested() const {
    if (querylog_path_.empty()) return;
    obs::QueryLog& qlog = obs::QueryLog::Global();
    Status st = qlog.DumpJsonl(querylog_path_);
    if (!st.ok()) {
      std::fprintf(stderr, "querylog dump failed: %s\n",
                   st.ToString().c_str());
      std::abort();
    }
    std::printf("wrote %zu query-log records to %s\n",
                qlog.Snapshot().size(), querylog_path_.c_str());
  }

 private:
  std::string bench_;
  std::string path_;
  std::string trace_path_;
  std::string querylog_path_;
  bool recorder_gate_ = false;
  std::vector<TrajectoryPoint> points_;
  std::vector<OperatorProfileEntry> profile_;
};

/// Runs one *traced* evaluation of `e` — outside any timed loop, so the
/// trace-off wall times stay the headline numbers — and folds its span
/// tree into the trajectory's operator profile. With
/// `write_chrome_trace` and a --trace=<path> flag, also writes the span
/// tree and worker timelines as a Chrome trace (chrome://tracing,
/// Perfetto).
inline void ProfileOnce(Trajectory* traj, const Database& db,
                        const ExprPtr& e, const std::string& sweep,
                        const std::string& variant, int n,
                        EvalOptions opts = EvalOptions(),
                        bool write_chrome_trace = false) {
  TraceCollector tc;
  opts.trace = &tc;
  MustEval(db, e, opts);
  traj->AddOperatorProfile(sweep, variant, n, tc);
  if (write_chrome_trace && !traj->chrome_trace_path().empty()) {
    Status st = WriteChromeTrace(tc, traj->chrome_trace_path());
    if (!st.ok()) {
      std::fprintf(stderr, "chrome trace write failed: %s\n",
                   st.ToString().c_str());
      std::abort();
    }
    std::printf("wrote chrome trace to %s\n",
                traj->chrome_trace_path().c_str());
  }
}

}  // namespace bench
}  // namespace n2j

#endif  // N2J_BENCH_BENCH_UTIL_H_
