// Experiment: Section 6's premise — "the relational join is not really
// necessary for the expressive power of the relational algebra; it was
// introduced to allow for various efficient implementations. The same
// can of course be done in an algebra for complex objects."
//
// One logical plan (the semijoin Rule 1 produces), four physical
// implementations: nested loop, hash, sort-merge, index nested-loop.
// The same comparison for the nestjoin, the paper's new operator, whose
// implementations are adapted from the same join methods.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace n2j {
namespace {

using bench::MustEval;
using bench::MustEvalModesAgree;
using bench::Section;
using bench::TimeMs;

std::unique_ptr<Database> MakeDb(int n, uint64_t seed) {
  auto db = std::make_unique<Database>();
  XYConfig config;
  config.seed = seed;
  config.x_rows = n;
  config.y_rows = n;
  config.key_domain = n;
  N2J_CHECK(AddRandomXY(db.get(), config).ok());
  N2J_CHECK(db->CreateIndex("Y", "a").ok());
  return db;
}

ExprPtr SemiJoinPlan() {
  return Expr::SemiJoin(Expr::Table("X"), Expr::Table("Y"), "x", "y",
                        Expr::Eq(Expr::Access(Expr::Var("y"), "a"),
                                 Expr::Access(Expr::Var("x"), "a")));
}

ExprPtr NestJoinPlan() {
  return Expr::NestJoin(Expr::Table("X"), Expr::Table("Y"), "x", "y",
                        Expr::Eq(Expr::Access(Expr::Var("y"), "a"),
                                 Expr::Access(Expr::Var("x"), "a")),
                        "ys");
}

EvalOptions Algo(JoinAlgorithm a) {
  EvalOptions opts;
  opts.join_algorithm = a;
  return opts;
}

void SweepAlgorithms(const char* title, const ExprPtr& plan,
                     const char* sweep, bench::Trajectory* traj) {
  Section(title);
  std::printf("%8s %15s %12s %16s %12s\n", "n", "nested (ms)", "hash (ms)",
              "sort-merge (ms)", "index (ms)");
  for (int n : {64, 256, 1024, 4096}) {
    auto db = MakeDb(n, 47);
    EvalOptions nested;
    nested.use_hash_joins = false;
    // Verify all algorithms and both engines agree first (and capture
    // each algorithm's counters).
    EvalStats s_nested;
    Value expected = MustEvalModesAgree(*db, plan, nested, &s_nested);
    const JoinAlgorithm algos[3] = {JoinAlgorithm::kHash,
                                    JoinAlgorithm::kSortMerge,
                                    JoinAlgorithm::kIndex};
    const char* names[3] = {"hash", "sortmerge", "index"};
    EvalStats s_algo[3];
    for (int i = 0; i < 3; ++i) {
      N2J_CHECK(MustEvalModesAgree(*db, plan, Algo(algos[i]), &s_algo[i]) ==
                expected);
    }
    double t_nl = n > 1024 ? -1.0
                           : TimeMs([&] { MustEval(*db, plan, nested); }, 30);
    double t[3];
    for (int i = 0; i < 3; ++i) {
      t[i] = TimeMs([&] { MustEval(*db, plan, Algo(algos[i])); }, 30);
    }
    if (t_nl >= 0) traj->Add(sweep, "nested", n, t_nl, s_nested);
    for (int i = 0; i < 3; ++i) traj->Add(sweep, names[i], n, t[i], s_algo[i]);
    if (t_nl < 0) {
      std::printf("%8d %15s %12.3f %16.3f %12.3f\n", n, "(skipped)", t[0],
                  t[1], t[2]);
    } else {
      std::printf("%8d %15.3f %12.3f %16.3f %12.3f\n", n, t_nl, t[0],
                  t[1], t[2]);
    }
  }
}

// Parallel speedup of the morsel-driven hash join: one workload, the
// same hash plan at 1/2/4/8 worker threads. Results are verified equal
// to the serial run first (morsel merges are input-ordered, so they must
// be). On a single hardware core the extra threads only add scheduling
// overhead — the sweep reports whatever the machine gives, it does not
// assume cores.
void SweepThreads(const char* title, const ExprPtr& plan,
                  const char* sweep, bench::Trajectory* traj) {
  Section(title);
  std::printf("%8s %12s %12s %12s %12s %10s\n", "n", "1t (ms)", "2t (ms)",
              "4t (ms)", "8t (ms)", "4t-speedup");
  for (int n : {1024, 4096}) {
    auto db = MakeDb(n, 47);
    Value expected = MustEvalModesAgree(*db, plan, Algo(JoinAlgorithm::kHash));
    double times[4];
    int threads[4] = {1, 2, 4, 8};
    for (int i = 0; i < 4; ++i) {
      EvalOptions opts = Algo(JoinAlgorithm::kHash);
      opts.num_threads = threads[i];
      EvalStats stats;
      N2J_CHECK(MustEvalModesAgree(*db, plan, opts, &stats) == expected);
      times[i] = TimeMs([&] { MustEval(*db, plan, opts); }, 30);
      traj->Add(sweep, "hash-" + std::to_string(threads[i]) + "t", n,
                times[i], stats);
    }
    std::printf("%8d %12.3f %12.3f %12.3f %12.3f %9.2fx\n", n, times[0],
                times[1], times[2], times[3], times[0] / times[2]);
  }
}

// Separate trace-on pass: one profiled evaluation per algorithm, so the
// JSON trajectory carries a per-operator time breakdown next to the
// (trace-off) headline timings above. The 4-thread hash nestjoin run
// also emits the Chrome trace when --trace=<path> was given — its
// morsel timelines are the interesting part.
void ProfileRuns(bench::Trajectory* traj) {
  auto db = MakeDb(1024, 47);
  const JoinAlgorithm algos[3] = {JoinAlgorithm::kHash,
                                  JoinAlgorithm::kSortMerge,
                                  JoinAlgorithm::kIndex};
  const char* names[3] = {"hash", "sortmerge", "index"};
  for (int i = 0; i < 3; ++i) {
    bench::ProfileOnce(traj, *db, SemiJoinPlan(), "semijoin-profile",
                       names[i], 1024, Algo(algos[i]));
  }
  EvalOptions mt = Algo(JoinAlgorithm::kHash);
  mt.num_threads = 4;
  bench::ProfileOnce(traj, *db, NestJoinPlan(), "nestjoin-profile",
                     "hash-4t", 1024, mt, /*write_chrome_trace=*/true);
}

// Flight-recorder overhead gate (--recorder-gate): A/B the same engine
// workload with recording on vs. off. Each of 7 reps times both arms
// back-to-back (order alternating) and yields one paired delta; the
// gate asserts the *minimum* delta over the reps stays under 1%.
// Machine noise (governor ramps, scheduler preemption) only inflates a
// rep's delta, so the cleanest rep is an upper bound on the true
// overhead — the gate trips only when the recorder is ≥1% slower in
// every single rep, i.e. the cost is real, not noise. n=4096 keeps a
// single query in the milliseconds, so the recorder's per-query
// microseconds must vanish into the bound — if this trips, recording
// stopped being lock-light.
void RecorderOverheadGate() {
  Section("Flight-recorder overhead gate (enabled vs disabled, min of 7)");
  auto db = MakeDb(4096, 47);
  QueryEngine engine(db.get());
  ExprPtr plan = SemiJoinPlan();
  auto once = [&] { N2J_CHECK(engine.RunAdl(plan).ok()); };
  obs::QueryLog& qlog = obs::QueryLog::Global();
  // Warm caches and the frequency governor before any timed sample.
  for (int i = 0; i < 10; ++i) once();
  double min_delta = 0.0;
  double best_on = -1.0, best_off = -1.0;
  for (int rep = 0; rep < 7; ++rep) {
    double ms[2];  // ms[0] = enabled, ms[1] = disabled
    // Alternate which arm runs first so monotonic machine drift
    // (warming, governor ramp) cannot systematically favor one side.
    for (int leg = 0; leg < 2; ++leg) {
      bool on_leg = (rep + leg) % 2 == 0;
      qlog.set_enabled(on_leg);
      ms[on_leg ? 0 : 1] = TimeMs(once, 50);
    }
    double delta = (ms[0] - ms[1]) / ms[1];
    if (rep == 0 || delta < min_delta) min_delta = delta;
    if (best_on < 0 || ms[0] < best_on) best_on = ms[0];
    if (best_off < 0 || ms[1] < best_off) best_off = ms[1];
  }
  qlog.set_enabled(true);
  std::printf("  enabled %.3fms  disabled %.3fms  min paired delta %+.3f%%\n",
              best_on, best_off, min_delta * 100.0);
  std::fflush(stdout);  // survive the abort below
  N2J_CHECK(min_delta < 0.01);
}

void BM_SemiJoin(benchmark::State& state) {
  auto db = MakeDb(512, 47);
  ExprPtr plan = SemiJoinPlan();
  EvalOptions opts = Algo(static_cast<JoinAlgorithm>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(*db, plan, opts));
}
BENCHMARK(BM_SemiJoin)
    ->Arg(static_cast<int>(JoinAlgorithm::kHash))
    ->Arg(static_cast<int>(JoinAlgorithm::kSortMerge))
    ->Arg(static_cast<int>(JoinAlgorithm::kIndex));

}  // namespace
}  // namespace n2j

int main(int argc, char** argv) {
  n2j::bench::Trajectory traj("join_algorithms", &argc, argv);
  n2j::SweepAlgorithms(
      "Semijoin X ⋉ Y: one logical operator, four physical algorithms",
      n2j::SemiJoinPlan(), "semijoin", &traj);
  n2j::SweepAlgorithms(
      "Nestjoin X ⊣ Y: the new operator admits the same implementations",
      n2j::NestJoinPlan(), "nestjoin", &traj);
  n2j::SweepThreads(
      "Morsel-driven parallel hash semijoin: threads 1/2/4/8",
      n2j::SemiJoinPlan(), "semijoin-threads", &traj);
  n2j::SweepThreads(
      "Morsel-driven parallel hash nestjoin: threads 1/2/4/8",
      n2j::NestJoinPlan(), "nestjoin-threads", &traj);
  n2j::ProfileRuns(&traj);
  if (traj.recorder_gate()) n2j::RecorderOverheadGate();
  std::printf(
      "\nThe index variant skips the build phase entirely (the index was\n"
      "built at load time); sort-merge pays n·log n but would win on\n"
      "presorted or disk-resident inputs; the nested loop is the\n"
      "tuple-oriented baseline the paper wants to leave behind.\n");
  traj.WriteIfRequested();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
