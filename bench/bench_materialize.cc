// Experiment: Section 6.2 — the materialize operator of [BlMG93] and its
// assembly access algorithm (a generalization of pointer-based joins,
// [ShCa90]). Object identifiers are physical pointers into a paged
// object store; naive pointer chasing faults pages in reference order,
// assembly sorts the needed oids first and faults each page once.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "exec/materialize.h"

namespace n2j {
namespace {

using bench::Section;
using bench::TimeMs;

struct Workload {
  std::unique_ptr<Database> db;
  Value refs;
};

/// `parts` objects in the store; `n_refs` references in random order.
Workload MakeWorkload(int parts, int n_refs, uint64_t seed) {
  Workload w;
  SupplierPartConfig config;
  config.seed = seed;
  config.num_parts = parts;
  config.num_suppliers = 0;
  w.db = MakeSupplierPartDatabase(config);
  Rng rng(seed + 1);
  const ClassDef* part = w.db->schema().FindClass("Part");
  std::vector<Value> rows;
  rows.reserve(static_cast<size_t>(n_refs));
  for (int i = 0; i < n_refs; ++i) {
    Oid oid = MakeOid(part->class_id,
                      static_cast<uint64_t>(rng.Uniform(0, parts - 1)));
    rows.push_back(Value::Tuple(
        {Field("i", Value::Int(i)), Field("ref", Value::MakeOidValue(oid))}));
  }
  w.refs = Value::Set(std::move(rows));
  return w;
}

Value Must(Result<Value> r) {
  N2J_CHECK(r.ok());
  return *r;
}

void SweepCacheSize() {
  Section(
      "Materialize: page faults, naive vs assembly "
      "(2048 objects = 32 pages of 64; 6000 random derefs)");
  std::printf("%14s %22s %24s\n", "cache (pages)", "naive misses/hits",
              "assembly misses/hits");
  for (uint32_t cache : {2u, 4u, 8u, 16u, 32u}) {
    Workload w = MakeWorkload(2048, 6000, 3);
    w.db->store().set_cache_pages(cache);

    w.db->store().ResetStats();
    Value a = Must(Materialize(*w.db, w.refs, "ref", "obj",
                               MaterializeStrategy::kNaive));
    StoreStats naive = w.db->store().stats();

    w.db->store().ResetStats();
    Value b = Must(Materialize(*w.db, w.refs, "ref", "obj",
                               MaterializeStrategy::kAssembly));
    StoreStats assembly = w.db->store().stats();
    N2J_CHECK(a == b);

    std::printf("%14u %14llu/%-8llu %15llu/%-8llu\n", cache,
                static_cast<unsigned long long>(naive.page_misses),
                static_cast<unsigned long long>(naive.page_hits),
                static_cast<unsigned long long>(assembly.page_misses),
                static_cast<unsigned long long>(assembly.page_hits));
  }
  std::printf(
      "\nAssembly faults each of the 32 object pages exactly once no\n"
      "matter how small the cache; naive pointer chasing degenerates to\n"
      "one miss per dereference once the working set exceeds the cache.\n");
}

void SweepStoreSize() {
  Section("Materialize wall time as the object store grows (cache: 8 pages)");
  std::printf("%10s %14s %16s %10s\n", "objects", "naive (ms)",
              "assembly (ms)", "speedup");
  for (int parts : {512, 2048, 8192}) {
    Workload w = MakeWorkload(parts, parts * 3, 5);
    w.db->store().set_cache_pages(8);
    double naive_ms = TimeMs(
        [&] {
          Must(Materialize(*w.db, w.refs, "ref", "obj",
                           MaterializeStrategy::kNaive));
        },
        40);
    double assembly_ms = TimeMs(
        [&] {
          Must(Materialize(*w.db, w.refs, "ref", "obj",
                           MaterializeStrategy::kAssembly));
        },
        40);
    std::printf("%10d %14.3f %16.3f %9.1fx\n", parts, naive_ms, assembly_ms,
                naive_ms / assembly_ms);
  }
  std::printf(
      "\n(In-memory wall time understates the gap a disk-backed store\n"
      "would show; the page-miss counters above are the faithful signal.)\n");
}

void BM_MaterializeNaive(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<int>(state.range(0)),
                            static_cast<int>(state.range(0)) * 3, 9);
  w.db->store().set_cache_pages(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Must(Materialize(
        *w.db, w.refs, "ref", "obj", MaterializeStrategy::kNaive)));
  }
}
BENCHMARK(BM_MaterializeNaive)->Arg(512)->Arg(4096);

void BM_MaterializeAssembly(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<int>(state.range(0)),
                            static_cast<int>(state.range(0)) * 3, 9);
  w.db->store().set_cache_pages(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Must(Materialize(
        *w.db, w.refs, "ref", "obj", MaterializeStrategy::kAssembly)));
  }
}
BENCHMARK(BM_MaterializeAssembly)->Arg(512)->Arg(4096);

}  // namespace
}  // namespace n2j

int main(int argc, char** argv) {
  n2j::SweepCacheSize();
  n2j::SweepStoreSize();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
