// Experiment: evaluation-backend ablation (ISSUE 7 + ISSUE 8) — the
// same nested queries four ways:
//
//   nested-loop  naive translation, tuple-at-a-time interpretation
//                (the paper's starting point)
//   optimized    the paper's full rewrite strategy, set-oriented
//                physical operators (the paper's destination)
//   shredded     naive translation lowered to a DAG of flat queries
//                over columnar relations, stitched back together,
//                executed row-at-a-time (the ISSUE 7 engine)
//   shred-vec    the same shredded DAG through the vectorized batch
//                pipeline: fused select-map-join loops over column
//                batches, batch hash probes (ISSUE 8)
//
// Every cell asserts bit-identical results against the nested-loop
// reference before timing (N2J_CHECK aborts fail CI); wall times land
// in the trajectory JSON (--json=...) but are never asserted.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "oosql/translate.h"
#include "shred/shred.h"

namespace n2j {
namespace {

using bench::MustEval;
using bench::MustRewrite;
using bench::Section;
using bench::TimeMs;

struct BackendQuery {
  const char* tag;
  const char* oosql;
};

// Paper shapes that exercise the structural shredding paths: extent
// scans, CSR child ranges, correlated subqueries, self-joins with
// equi-predicates. No oid dereferences (match_fraction < 1 would turn
// timing runs into error-path runs).
const BackendQuery kWorkload[] = {
    {"fig1-nested-select",
     "select (sname = s.sname, ps = select z.pid from z in s.parts) "
     "from s in SUPPLIER"},
    {"q4-dangling",
     "select s.eid from s in SUPPLIER where "
     "exists z in s.parts : not exists p in PART : z.pid = p.pid"},
    {"q6-nestjoin-shape",
     "select (sname = s.sname, "
     "        partssuppl = select p from p in PART where p[pid] in s.parts) "
     "from s in SUPPLIER"},
    {"flatten-parts",
     "select z from s in SUPPLIER, z in s.parts"},
    {"selfjoin-price",
     "select (a = x.pname, b = y.pname) from x in PART, y in PART "
     "where x.price = y.price"},
};

std::unique_ptr<Database> MakeDb(int n) {
  SupplierPartConfig sp;
  sp.seed = 43;
  sp.num_parts = n;
  sp.num_suppliers = n / 4;
  sp.parts_per_supplier = 6;
  sp.match_fraction = 0.9;
  sp.red_fraction = 0.2;
  return MakeSupplierPartDatabase(sp);
}

/// Evaluates through the shredded backend, aborting on error (the
/// fidelity contract says it may only fail where the interpreter fails,
/// and the interpreter succeeded on this workload).
Value MustEvalShredded(const Database& db, const ExprPtr& e,
                       bool vectorized = false, EvalStats* stats = nullptr) {
  EvalOptions opts;
  opts.backend = Backend::kShredded;
  opts.compiled = bench::BenchCompiledMode();
  opts.vectorized = vectorized;
  EvalStats local;
  Result<Value> r = shred::EvalWithBackend(db, e, opts, &local);
  if (!r.ok()) {
    std::fprintf(stderr, "shredded eval failed: %s\nexpr: %s\n",
                 r.status().ToString().c_str(), AlgebraStr(e).c_str());
    std::abort();
  }
  if (stats != nullptr) *stats = local;
  return *r;
}

void RunBackendComparison(bench::Trajectory* traj) {
  Section("Evaluation backend — nested-loop vs optimized vs shredded "
          "(scalar and vectorized; results asserted bit-identical)");
  std::printf("%-20s %6s %12s %12s %12s %12s\n", "query", "n", "nl (ms)",
              "opt (ms)", "shred (ms)", "shred-vec");
  EvalOptions nl_opts;
  nl_opts.use_hash_joins = false;
  nl_opts.enable_pnhl = false;
  for (int n : {256, 1024}) {
    auto db = MakeDb(n);
    Translator tr(db->schema(), db.get());
    for (const BackendQuery& q : kWorkload) {
      Result<TypedExpr> typed = tr.TranslateString(q.oosql);
      N2J_CHECK(typed.ok());
      const ExprPtr& naive = typed->expr;
      ExprPtr optimized = MustRewrite(*db, naive).expr;

      // Result-equivalence gate: all four cells agree bit-for-bit.
      EvalStats nl_stats, opt_stats, shred_stats, vec_stats;
      Value reference = MustEval(*db, naive, nl_opts, &nl_stats);
      Value opt = MustEval(*db, optimized, EvalOptions(), &opt_stats);
      Value shredded =
          MustEvalShredded(*db, naive, /*vectorized=*/false, &shred_stats);
      Value vec =
          MustEvalShredded(*db, naive, /*vectorized=*/true, &vec_stats);
      N2J_CHECK(reference == opt);
      N2J_CHECK(reference == shredded);
      N2J_CHECK(reference == vec);

      double nl_ms = TimeMs([&] { MustEval(*db, naive, nl_opts); });
      double opt_ms = TimeMs([&] { MustEval(*db, optimized); });
      double shred_ms = TimeMs([&] { MustEvalShredded(*db, naive); });
      double vec_ms =
          TimeMs([&] { MustEvalShredded(*db, naive, /*vectorized=*/true); });
      std::printf("%-20s %6d %12.3f %12.3f %12.3f %12.3f\n", q.tag, n, nl_ms,
                  opt_ms, shred_ms, vec_ms);
      traj->Add(q.tag, "nested-loop", n, nl_ms, nl_stats);
      traj->Add(q.tag, "optimized", n, opt_ms, opt_stats);
      traj->Add(q.tag, "shredded", n, shred_ms, shred_stats);
      traj->Add(q.tag, "shredded-vec", n, vec_ms, vec_stats);
    }
  }
  std::printf(
      "\n'nested-loop' interprets the naive translation tuple-at-a-time;\n"
      "'optimized' runs the paper's full rewrite strategy; 'shredded'\n"
      "lowers the *naive* translation to flat columnar queries and\n"
      "stitches the nested result; 'shred-vec' runs the same flat DAG\n"
      "in fused column batches. All four are asserted equal first.\n");
}

enum class Fig1Mode { kOptimized, kShredded, kShreddedVec };

void BM_BackendFig1(benchmark::State& state, Fig1Mode mode) {
  auto db = MakeDb(static_cast<int>(state.range(0)));
  Translator tr(db->schema(), db.get());
  Result<TypedExpr> typed = tr.TranslateString(kWorkload[0].oosql);
  N2J_CHECK(typed.ok());
  ExprPtr naive = typed->expr;
  ExprPtr optimized = MustRewrite(*db, naive).expr;
  for (auto _ : state) {
    switch (mode) {
      case Fig1Mode::kOptimized:
        benchmark::DoNotOptimize(MustEval(*db, optimized));
        break;
      case Fig1Mode::kShredded:
        benchmark::DoNotOptimize(MustEvalShredded(*db, naive));
        break;
      case Fig1Mode::kShreddedVec:
        benchmark::DoNotOptimize(
            MustEvalShredded(*db, naive, /*vectorized=*/true));
        break;
    }
  }
}
void BM_Fig1Optimized(benchmark::State& state) {
  BM_BackendFig1(state, Fig1Mode::kOptimized);
}
void BM_Fig1Shredded(benchmark::State& state) {
  BM_BackendFig1(state, Fig1Mode::kShredded);
}
void BM_Fig1ShreddedVec(benchmark::State& state) {
  BM_BackendFig1(state, Fig1Mode::kShreddedVec);
}
BENCHMARK(BM_Fig1Optimized)->Arg(128)->Arg(512);
BENCHMARK(BM_Fig1Shredded)->Arg(128)->Arg(512);
BENCHMARK(BM_Fig1ShreddedVec)->Arg(128)->Arg(512);

}  // namespace
}  // namespace n2j

int main(int argc, char** argv) {
  n2j::bench::Trajectory traj("backend_ablation", &argc, argv);
  n2j::RunBackendComparison(&traj);
  traj.WriteIfRequested();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
