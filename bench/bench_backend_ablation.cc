// Experiment: evaluation-backend ablation (ISSUE 7 + ISSUE 8) — the
// same nested queries four ways:
//
//   nested-loop  naive translation, tuple-at-a-time interpretation
//                (the paper's starting point)
//   optimized    the paper's full rewrite strategy, set-oriented
//                physical operators (the paper's destination)
//   shredded     naive translation lowered to a DAG of flat queries
//                over columnar relations, stitched back together,
//                executed row-at-a-time (the ISSUE 7 engine)
//   shred-vec    the same shredded DAG through the vectorized batch
//                pipeline: fused select-map-join loops over column
//                batches, batch hash probes (ISSUE 8)
//
// Every cell asserts bit-identical results against the nested-loop
// reference before timing (N2J_CHECK aborts fail CI); wall times land
// in the trajectory JSON (--json=...) but are never asserted.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>

#include "bench/bench_util.h"
#include "oosql/translate.h"
#include "shred/shred.h"

namespace n2j {
namespace {

using bench::MustEval;
using bench::MustRewrite;
using bench::Section;
using bench::TimeMs;

struct BackendQuery {
  const char* tag;
  const char* oosql;
};

// Paper shapes that exercise the structural shredding paths: extent
// scans, CSR child ranges, correlated subqueries, self-joins with
// equi-predicates. No oid dereferences (match_fraction < 1 would turn
// timing runs into error-path runs).
const BackendQuery kWorkload[] = {
    {"fig1-nested-select",
     "select (sname = s.sname, ps = select z.pid from z in s.parts) "
     "from s in SUPPLIER"},
    {"q4-dangling",
     "select s.eid from s in SUPPLIER where "
     "exists z in s.parts : not exists p in PART : z.pid = p.pid"},
    {"q6-nestjoin-shape",
     "select (sname = s.sname, "
     "        partssuppl = select p from p in PART where p[pid] in s.parts) "
     "from s in SUPPLIER"},
    {"flatten-parts",
     "select z from s in SUPPLIER, z in s.parts"},
    {"selfjoin-price",
     "select (a = x.pname, b = y.pname) from x in PART, y in PART "
     "where x.price = y.price"},
};

std::unique_ptr<Database> MakeDb(int n) {
  SupplierPartConfig sp;
  sp.seed = 43;
  sp.num_parts = n;
  sp.num_suppliers = n / 4;
  sp.parts_per_supplier = 6;
  sp.match_fraction = 0.9;
  sp.red_fraction = 0.2;
  return MakeSupplierPartDatabase(sp);
}

// --threads=N (default 4): worker count for the shred-vec-mtN columns.
// Parsed (and stripped) in main() before benchmark::Initialize.
int g_threads = 4;

/// Evaluates through the shredded backend, aborting on error (the
/// fidelity contract says it may only fail where the interpreter fails,
/// and the interpreter succeeded on this workload).
Value MustEvalShredded(const Database& db, const ExprPtr& e,
                       bool vectorized = false, EvalStats* stats = nullptr,
                       int num_threads = 1) {
  EvalOptions opts;
  opts.backend = Backend::kShredded;
  opts.compiled = bench::BenchCompiledMode();
  opts.vectorized = vectorized;
  opts.num_threads = num_threads;
  EvalStats local;
  Result<Value> r = shred::EvalWithBackend(db, e, opts, &local);
  if (!r.ok()) {
    std::fprintf(stderr, "shredded eval failed: %s\nexpr: %s\n",
                 r.status().ToString().c_str(), AlgebraStr(e).c_str());
    std::abort();
  }
  if (stats != nullptr) *stats = local;
  return *r;
}

void RunBackendComparison(bench::Trajectory* traj) {
  Section("Evaluation backend — nested-loop vs optimized vs shredded "
          "(scalar, vectorized, morsel-parallel; results asserted "
          "bit-identical)");
  const std::string mtN = "shred-vec-mt" + std::to_string(g_threads);
  const std::string mtN_hdr = "svec-mt" + std::to_string(g_threads);
  std::printf("%-20s %6s %12s %12s %12s %12s %12s %12s\n", "query", "n",
              "nl (ms)", "opt (ms)", "shred (ms)", "shred-vec",
              "svec-mt2", mtN_hdr.c_str());
  EvalOptions nl_opts;
  nl_opts.use_hash_joins = false;
  nl_opts.enable_pnhl = false;
  for (int n : {256, 1024}) {
    auto db = MakeDb(n);
    Translator tr(db->schema(), db.get());
    for (const BackendQuery& q : kWorkload) {
      Result<TypedExpr> typed = tr.TranslateString(q.oosql);
      N2J_CHECK(typed.ok());
      const ExprPtr& naive = typed->expr;
      ExprPtr optimized = MustRewrite(*db, naive).expr;

      // Result-equivalence gate: every cell agrees bit-for-bit.
      EvalStats nl_stats, opt_stats, shred_stats, vec_stats;
      EvalStats mt2_stats, mtn_stats;
      Value reference = MustEval(*db, naive, nl_opts, &nl_stats);
      Value opt = MustEval(*db, optimized, EvalOptions(), &opt_stats);
      Value shredded =
          MustEvalShredded(*db, naive, /*vectorized=*/false, &shred_stats);
      Value vec =
          MustEvalShredded(*db, naive, /*vectorized=*/true, &vec_stats);
      Value mt2 = MustEvalShredded(*db, naive, /*vectorized=*/true,
                                   &mt2_stats, /*num_threads=*/2);
      Value mtn = MustEvalShredded(*db, naive, /*vectorized=*/true,
                                   &mtn_stats, g_threads);
      N2J_CHECK(reference == opt);
      N2J_CHECK(reference == shredded);
      N2J_CHECK(reference == vec);
      N2J_CHECK(reference == mt2);
      N2J_CHECK(reference == mtn);
      // Morsel parallelism must not change the work, only the wall
      // clock: exact counter agreement with the serial pipeline.
      N2J_CHECK(vec_stats.Compact() == mt2_stats.Compact());
      N2J_CHECK(vec_stats.Compact() == mtn_stats.Compact());

      double nl_ms = TimeMs([&] { MustEval(*db, naive, nl_opts); });
      double opt_ms = TimeMs([&] { MustEval(*db, optimized); });
      double shred_ms = TimeMs([&] { MustEvalShredded(*db, naive); });
      double vec_ms =
          TimeMs([&] { MustEvalShredded(*db, naive, /*vectorized=*/true); });
      double mt2_ms = TimeMs([&] {
        MustEvalShredded(*db, naive, /*vectorized=*/true, nullptr,
                         /*num_threads=*/2);
      });
      double mtn_ms = TimeMs([&] {
        MustEvalShredded(*db, naive, /*vectorized=*/true, nullptr, g_threads);
      });
      std::printf("%-20s %6d %12.3f %12.3f %12.3f %12.3f %12.3f %12.3f\n",
                  q.tag, n, nl_ms, opt_ms, shred_ms, vec_ms, mt2_ms, mtn_ms);
      traj->Add(q.tag, "nested-loop", n, nl_ms, nl_stats);
      traj->Add(q.tag, "optimized", n, opt_ms, opt_stats);
      traj->Add(q.tag, "shredded", n, shred_ms, shred_stats);
      traj->Add(q.tag, "shredded-vec", n, vec_ms, vec_stats);
      traj->Add(q.tag, "shred-vec-mt2", n, mt2_ms, mt2_stats);
      traj->Add(q.tag, mtN, n, mtn_ms, mtn_stats);
    }
  }

  // Shredded-only sweep at n=4096: big enough that even the single-
  // context self-join root splits into several candidate windows. The
  // quadratic nested-loop reference is too slow here, so the scalar
  // shredded engine (asserted against it at the sizes above) is the
  // equivalence reference.
  Section("Morsel-parallel scaling at n=4096 (shredded backends only)");
  std::printf("%-20s %6s %12s %12s %12s %12s\n", "query", "n", "shred (ms)",
              "shred-vec", "svec-mt2", mtN_hdr.c_str());
  {
    const int n = 4096;
    auto db = MakeDb(n);
    Translator tr(db->schema(), db.get());
    for (const BackendQuery& q : kWorkload) {
      Result<TypedExpr> typed = tr.TranslateString(q.oosql);
      N2J_CHECK(typed.ok());
      const ExprPtr& naive = typed->expr;
      EvalStats shred_stats, vec_stats, mt2_stats, mtn_stats;
      Value reference =
          MustEvalShredded(*db, naive, /*vectorized=*/false, &shred_stats);
      Value vec =
          MustEvalShredded(*db, naive, /*vectorized=*/true, &vec_stats);
      Value mt2 = MustEvalShredded(*db, naive, /*vectorized=*/true,
                                   &mt2_stats, /*num_threads=*/2);
      Value mtn = MustEvalShredded(*db, naive, /*vectorized=*/true,
                                   &mtn_stats, g_threads);
      N2J_CHECK(reference == vec);
      N2J_CHECK(reference == mt2);
      N2J_CHECK(reference == mtn);
      N2J_CHECK(vec_stats.Compact() == mt2_stats.Compact());
      N2J_CHECK(vec_stats.Compact() == mtn_stats.Compact());

      double shred_ms = TimeMs([&] { MustEvalShredded(*db, naive); });
      double vec_ms =
          TimeMs([&] { MustEvalShredded(*db, naive, /*vectorized=*/true); });
      double mt2_ms = TimeMs([&] {
        MustEvalShredded(*db, naive, /*vectorized=*/true, nullptr,
                         /*num_threads=*/2);
      });
      double mtn_ms = TimeMs([&] {
        MustEvalShredded(*db, naive, /*vectorized=*/true, nullptr, g_threads);
      });
      std::printf("%-20s %6d %12.3f %12.3f %12.3f %12.3f\n", q.tag, n,
                  shred_ms, vec_ms, mt2_ms, mtn_ms);
      traj->Add(q.tag, "shredded", n, shred_ms, shred_stats);
      traj->Add(q.tag, "shredded-vec", n, vec_ms, vec_stats);
      traj->Add(q.tag, "shred-vec-mt2", n, mt2_ms, mt2_stats);
      traj->Add(q.tag, mtN, n, mtn_ms, mtn_stats);
    }
  }
  std::printf(
      "\n'nested-loop' interprets the naive translation tuple-at-a-time;\n"
      "'optimized' runs the paper's full rewrite strategy; 'shredded'\n"
      "lowers the *naive* translation to flat columnar queries and\n"
      "stitches the nested result; 'shred-vec' runs the same flat DAG\n"
      "in fused column batches; the mtN columns run that pipeline over\n"
      "N worker threads (--threads, default 4) with bit-identical output\n"
      "and exactly equal counters, asserted before timing.\n");
}

enum class Fig1Mode { kOptimized, kShredded, kShreddedVec };

void BM_BackendFig1(benchmark::State& state, Fig1Mode mode) {
  auto db = MakeDb(static_cast<int>(state.range(0)));
  Translator tr(db->schema(), db.get());
  Result<TypedExpr> typed = tr.TranslateString(kWorkload[0].oosql);
  N2J_CHECK(typed.ok());
  ExprPtr naive = typed->expr;
  ExprPtr optimized = MustRewrite(*db, naive).expr;
  for (auto _ : state) {
    switch (mode) {
      case Fig1Mode::kOptimized:
        benchmark::DoNotOptimize(MustEval(*db, optimized));
        break;
      case Fig1Mode::kShredded:
        benchmark::DoNotOptimize(MustEvalShredded(*db, naive));
        break;
      case Fig1Mode::kShreddedVec:
        benchmark::DoNotOptimize(
            MustEvalShredded(*db, naive, /*vectorized=*/true));
        break;
    }
  }
}
void BM_Fig1Optimized(benchmark::State& state) {
  BM_BackendFig1(state, Fig1Mode::kOptimized);
}
void BM_Fig1Shredded(benchmark::State& state) {
  BM_BackendFig1(state, Fig1Mode::kShredded);
}
void BM_Fig1ShreddedVec(benchmark::State& state) {
  BM_BackendFig1(state, Fig1Mode::kShreddedVec);
}
BENCHMARK(BM_Fig1Optimized)->Arg(128)->Arg(512);
BENCHMARK(BM_Fig1Shredded)->Arg(128)->Arg(512);
BENCHMARK(BM_Fig1ShreddedVec)->Arg(128)->Arg(512);

}  // namespace
}  // namespace n2j

int main(int argc, char** argv) {
  // Strip --threads=N before google-benchmark sees (and rejects) it.
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      int n = std::atoi(argv[i] + 10);
      if (n >= 1) n2j::g_threads = n;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    }
  }
  n2j::bench::Trajectory traj("backend_ablation", &argc, argv);
  n2j::RunBackendComparison(&traj);
  traj.WriteIfRequested();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
