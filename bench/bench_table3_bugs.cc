// Experiment: Table 3 — "Set Comparison Operators And Bugs".
//
// For each operator θ the paper tabulates P(x, ∅) — the value of
// x.c θ Y' when the correlated subquery Y' is empty. Whenever P(x, ∅)
// is not statically false, the relational grouping plan of [GaWo87]
// (join + nest + select + project) silently drops dangling outer tuples:
// the Complex Object bug.
//
// This binary reproduces the table three ways per operator:
//   static   — the optimizer's three-valued analysis of P(x, ∅),
//   dynamic  — whether the forced grouping plan actually loses tuples on
//              data with dangling outer tuples,
//   nestjoin — confirmation that the nestjoin plan is always exact.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace n2j {
namespace {

using bench::MustEval;
using bench::MustRewrite;
using bench::Section;
using bench::TimeMs;

/// X(a, c : {(d)}), Y(a, e) with dangling X tuples guaranteed.
std::unique_ptr<Database> MakeDb(int rows, uint64_t seed) {
  auto db = std::make_unique<Database>();
  XYConfig config;
  config.seed = seed;
  config.x_rows = rows;
  config.y_rows = rows;
  config.key_domain = rows;  // sparse keys → many dangling tuples
  config.empty_set_prob = 0.25;
  N2J_CHECK(AddRandomXY(db.get(), config).ok());
  return db;
}

/// σ[x : x.c θ Y'](X) with Y' = α[y:(d=y.e)](σ[y : x.a = y.a](Y)).
ExprPtr PaperQuery(BinOp op) {
  ExprPtr subq = Expr::Map(
      "y", Expr::TupleConstruct({"d"}, {Expr::Access(Expr::Var("y"), "e")}),
      Expr::Select("y",
                   Expr::Eq(Expr::Access(Expr::Var("x"), "a"),
                            Expr::Access(Expr::Var("y"), "a")),
                   Expr::Table("Y")));
  ExprPtr lhs = Expr::Access(Expr::Var("x"), "c");
  if (op == BinOp::kContains) {
    lhs = Expr::SetConstruct({Expr::Access(Expr::Var("x"), "c")});
  }
  return Expr::Select("x", Expr::Bin(op, lhs, subq), Expr::Table("X"));
}

/// Extracts the subquery node back out of the built query.
ExprPtr SubqueryOf(const ExprPtr& q) { return q->child(1)->child(1); }

struct Row {
  BinOp op;
  const char* display;
  const char* paper_verdict;
};

const Row kRows[] = {
    {BinOp::kSubset, "x.c ⊂ Y'", "false"},
    {BinOp::kSubsetEq, "x.c ⊆ Y'", "?"},
    {BinOp::kEq, "x.c = Y'", "?"},
    {BinOp::kSupsetEq, "x.c ⊇ Y'", "true"},
    {BinOp::kSupset, "x.c ⊃ Y'", "?"},
    {BinOp::kContains, "x.c ∋ Y'", "?"},
};

void PrintTable3() {
  Section("Table 3: Set Comparison Operators And Bugs — P(x, ∅)");
  auto db = MakeDb(60, 31);

  std::printf("%-12s %8s %9s | %15s %15s %12s\n", "P(x, Y')", "paper",
              "static", "grouping lost", "nestjoin lost", "bug?");
  for (const Row& row : kRows) {
    ExprPtr q = PaperQuery(row.op);
    TriBool verdict = StaticValueWithEmptySubquery(q->child(1), SubqueryOf(q));

    // Ground truth: nested-loop evaluation.
    Value truth = MustEval(*db, q);

    // Forced [GaWo87] grouping plan.
    RewriteOptions unsafe;
    unsafe.enable_setcmp = false;      // keep the raw set comparison
    unsafe.enable_quantifier = false;  // (so grouping must handle it)
    unsafe.grouping = GroupingMode::kForceGroupingUnsafe;
    RewriteResult grouped = MustRewrite(*db, q, unsafe);
    Value group_result = MustEval(*db, grouped.expr);

    // Nestjoin plan (the engine default for these operators).
    RewriteOptions nestjoin = unsafe;
    nestjoin.grouping = GroupingMode::kNestJoin;
    RewriteResult nj = MustRewrite(*db, q, nestjoin);
    Value nj_result = MustEval(*db, nj.expr);

    size_t lost_grouping =
        truth.set_size() - truth.SetIntersect(group_result).set_size() +
        (group_result.set_size() -
         truth.SetIntersect(group_result).set_size());
    size_t lost_nj = truth == nj_result ? 0 : 1;
    bool bug = group_result != truth;
    std::printf("%-14s %6s %9s | %15zu %15zu %12s\n", row.display,
                row.paper_verdict, TriBoolName(verdict), lost_grouping,
                lost_nj, bug ? "YES (lost)" : "no");
    N2J_CHECK(nj_result == truth);
    // The bug appears exactly when the static analysis cannot prove
    // P(x,∅) = false — for this data distribution.
    if (verdict == TriBool::kFalse) N2J_CHECK(!bug);
  }
  std::printf(
      "\nReading: 'static' is the optimizer's three-valued partial\n"
      "evaluation of P(x, ∅); a non-false verdict disables the [GaWo87]\n"
      "grouping plan (GroupingMode::kGroupingWhenSafe) because dangling\n"
      "tuples would be lost — exactly the rows the paper flags.\n");
}

void PrintCosts() {
  Section("Grouping-requiring queries: plan costs (|X| = |Y| = 400)");
  auto db = MakeDb(400, 12);
  std::printf("%-12s %14s %14s %14s\n", "operator", "nested (ms)",
              "grouping (ms)", "nestjoin (ms)");
  for (const Row& row : kRows) {
    ExprPtr q = PaperQuery(row.op);
    RewriteOptions unsafe;
    unsafe.enable_setcmp = false;
    unsafe.enable_quantifier = false;
    unsafe.grouping = GroupingMode::kForceGroupingUnsafe;
    ExprPtr grouped = MustRewrite(*db, q, unsafe).expr;
    unsafe.grouping = GroupingMode::kNestJoin;
    ExprPtr nj = MustRewrite(*db, q, unsafe).expr;
    double naive_ms = TimeMs([&] { MustEval(*db, q); }, 30);
    double grouped_ms = TimeMs([&] { MustEval(*db, grouped); }, 30);
    double nj_ms = TimeMs([&] { MustEval(*db, nj); }, 30);
    std::printf("%-14s %12.3f %14.3f %14.3f\n", row.display, naive_ms,
                grouped_ms, nj_ms);
  }
  std::printf(
      "\n(grouping is *incorrect* for the '?'/'true' rows — shown only to\n"
      "compare operator cost; the nestjoin is both exact and join-fast.)\n");
}

void BM_SubseteqNestedLoop(benchmark::State& state) {
  auto db = MakeDb(static_cast<int>(state.range(0)), 3);
  ExprPtr q = PaperQuery(BinOp::kSubsetEq);
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(*db, q));
}
BENCHMARK(BM_SubseteqNestedLoop)->Arg(64)->Arg(256)->Arg(1024);

void BM_SubseteqNestJoin(benchmark::State& state) {
  auto db = MakeDb(static_cast<int>(state.range(0)), 3);
  ExprPtr q = MustRewrite(*db, PaperQuery(BinOp::kSubsetEq)).expr;
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(*db, q));
}
BENCHMARK(BM_SubseteqNestJoin)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace n2j

int main(int argc, char** argv) {
  n2j::PrintTable3();
  n2j::PrintCosts();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
