// Experiment: Figure 2 — "The Complex Object Bug", reproduced on the
// paper's exact tables.
//
//   X = { (a=1, c={1,2}), (a=2, c=∅), (a=3, c={2,3}) }
//   Y = { (a=1, e=1), (a=1, e=2), (a=1, e=3), (a=3, e=3) }
//   query:  σ[x : x.c ⊆ σ[y : x.a = y.a](Y)](X)
//
// The figure's pipeline — join, nest, select/project — loses the
// dangling tuple (a=2, c=∅), for which ∅ ⊆ ∅ holds: the tuple belongs
// in the answer but never reaches the nest. This binary prints every
// intermediate table of the figure and diffs the outcomes.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace n2j {
namespace {

using bench::MustEval;
using bench::MustRewrite;
using bench::Section;

void PrintRelation(const char* name, const Value& rel) {
  std::printf("%s:\n", name);
  for (const Value& t : rel.elements()) {
    std::printf("  %s\n", t.ToString().c_str());
  }
  if (rel.set_size() == 0) std::printf("  (empty)\n");
}

ExprPtr PaperQuery() {
  ExprPtr subq = Expr::Map(
      "y", Expr::TupleConstruct({"d"}, {Expr::Access(Expr::Var("y"), "e")}),
      Expr::Select("y",
                   Expr::Eq(Expr::Access(Expr::Var("x"), "a"),
                            Expr::Access(Expr::Var("y"), "a")),
                   Expr::Table("Y")));
  return Expr::Select(
      "x",
      Expr::Bin(BinOp::kSubsetEq, Expr::Access(Expr::Var("x"), "c"), subq),
      Expr::Table("X"));
}

void ReproduceFigure2() {
  Section("Figure 2: The Complex Object Bug — the paper's exact data");
  auto db = MakeFigure2Database();

  PrintRelation("X", MustEval(*db, Expr::Table("X")));
  PrintRelation("\nY", MustEval(*db, Expr::Table("Y")));

  ExprPtr q = PaperQuery();
  std::printf("\nnested query:\n  %s\n", AlgebraStr(q).c_str());

  // The figure's intermediates, built from the grouping plan the
  // optimizer emits in forced mode.
  RewriteOptions unsafe;
  unsafe.enable_setcmp = false;
  unsafe.enable_quantifier = false;
  unsafe.grouping = GroupingMode::kForceGroupingUnsafe;
  RewriteResult grouped = MustRewrite(*db, q, unsafe);
  std::printf("\n[GaWo87] grouping plan:\n  %s\n",
              AlgebraStr(grouped.expr).c_str());

  // Walk the plan to expose join and nest intermediates:
  // π(σ(ν(join))) — peel the layers.
  ExprPtr select_node = grouped.expr->child(0);
  ExprPtr nest_node = select_node->child(0);
  ExprPtr join_node = nest_node->child(0);
  std::printf("\nStep 1 — the join (the dangling tuple a=2 is lost here):\n");
  PrintRelation("X ⋈ Y", MustEval(*db, join_node));
  std::printf("\nStep 2 — the nest (grouping matching Y-tuples):\n");
  PrintRelation("ν(X ⋈ Y)", MustEval(*db, nest_node));

  Value truth = MustEval(*db, q);
  Value buggy = MustEval(*db, grouped.expr);
  std::printf("\nStep 3 — select + project:\n");
  PrintRelation("join-query result (BUGGY)", buggy);
  std::printf("\nnested-loop result (correct):\n");
  PrintRelation("σ[x : x.c ⊆ Y'](X)", truth);

  Value lost = truth.SetDifference(buggy);
  std::printf("\nlost tuples (the Complex Object bug): %s\n",
              lost.ToString().c_str());
  N2J_CHECK(lost.set_size() == 1);
  N2J_CHECK(lost.elements()[0].FindField("a")->int_value() == 2);

  // The nestjoin plan keeps the dangling tuple.
  RewriteResult nj = MustRewrite(*db, q);
  Value fixed = MustEval(*db, nj.expr);
  std::printf("\nnestjoin plan:\n  %s\n", AlgebraStr(nj.expr).c_str());
  PrintRelation("nestjoin result", fixed);
  N2J_CHECK(fixed == truth);
  std::printf(
      "\nP(x, ∅) static analysis: %s  (not provably false ⇒ grouping "
      "rejected,\nnestjoin chosen — Section 5.2.2 / 6.1)\n",
      TriBoolName(StaticValueWithEmptySubquery(q->child(1),
                                               q->child(1)->child(1))));
}

// How often does the bug strike on random data? (frequency of affected
// tuples as the empty-set probability grows.)
void BugFrequencySweep() {
  Section("Bug frequency on random data (|X| = |Y| = 200)");
  std::printf("%-18s %14s %16s\n", "empty-set prob", "lost tuples",
              "of correct size");
  for (double p : {0.0, 0.1, 0.3, 0.5}) {
    XYConfig config;
    config.seed = 77;
    config.x_rows = 200;
    config.y_rows = 200;
    config.key_domain = 300;  // sparse → dangling tuples even without ∅
    config.empty_set_prob = p;
    auto db = std::make_unique<Database>();
    N2J_CHECK(AddRandomXY(db.get(), config).ok());
    ExprPtr q = PaperQuery();
    RewriteOptions unsafe;
    unsafe.enable_setcmp = false;
    unsafe.enable_quantifier = false;
    unsafe.grouping = GroupingMode::kForceGroupingUnsafe;
    Value truth = MustEval(*db, q);
    Value buggy = MustEval(*db, MustRewrite(*db, q, unsafe).expr);
    std::printf("%-18.1f %14zu %16zu\n", p,
                truth.SetDifference(buggy).set_size(), truth.set_size());
  }
  std::printf(
      "\nEvery x whose correlated subquery is empty — either because c=∅\n"
      "matches ∅⊆∅ or because no Y-partner exists — is silently dropped\n"
      "by the grouping plan.\n");
}

void BM_GroupingPlan(benchmark::State& state) {
  XYConfig config;
  config.x_rows = static_cast<int>(state.range(0));
  config.y_rows = static_cast<int>(state.range(0));
  auto db = std::make_unique<Database>();
  N2J_CHECK(AddRandomXY(db.get(), config).ok());
  RewriteOptions unsafe;
  unsafe.enable_setcmp = false;
  unsafe.enable_quantifier = false;
  unsafe.grouping = GroupingMode::kForceGroupingUnsafe;
  ExprPtr plan = MustRewrite(*db, PaperQuery(), unsafe).expr;
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(*db, plan));
}
BENCHMARK(BM_GroupingPlan)->Arg(128)->Arg(512);

void BM_NestJoinPlan(benchmark::State& state) {
  XYConfig config;
  config.x_rows = static_cast<int>(state.range(0));
  config.y_rows = static_cast<int>(state.range(0));
  auto db = std::make_unique<Database>();
  N2J_CHECK(AddRandomXY(db.get(), config).ok());
  ExprPtr plan = MustRewrite(*db, PaperQuery()).expr;
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(*db, plan));
}
BENCHMARK(BM_NestJoinPlan)->Arg(128)->Arg(512);

}  // namespace
}  // namespace n2j

int main(int argc, char** argv) {
  n2j::ReproduceFigure2();
  n2j::BugFrequencySweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
