// Experiment: Section 6.2 — the PNHL algorithm of [DeLa92] for joining a
// set-valued attribute with a base table:
//
//   α[x : x except (parts = x.parts ⋈_{z,v : z.pid = v.pid} PART)](SUPPLIER)
//
// "Compared to the unnest-join-nest processing method, the algorithm
// achieves better performance", and "only the flat table can be the
// build table". This binary sweeps the memory budget (partition count)
// and the fan-out, comparing PNHL, unnest–join–nest and nested loops.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "exec/pnhl.h"

namespace n2j {
namespace {

using bench::Section;
using bench::TimeMs;

struct Workload {
  Value outer;
  Value inner;
  PnhlParams params;
};

/// `outer_n` suppliers with `fanout` part refs each; `inner_n` parts.
Workload MakeWorkload(int outer_n, int inner_n, int fanout, uint64_t seed) {
  SupplierPartConfig config;
  config.seed = seed;
  config.num_parts = inner_n;
  config.num_suppliers = outer_n;
  config.parts_per_supplier = fanout;
  config.match_fraction = 0.95;
  auto db = MakeSupplierPartDatabase(config);
  Workload w;
  w.outer = db->FindTable("SUPPLIER")->AsSetValue();
  w.inner = db->FindTable("PART")->AsSetValue();
  w.params.set_attr = "parts";
  w.params.elem_key = "pid";
  w.params.inner_key = "pid";
  return w;
}

Value Must(Result<Value> r) {
  N2J_CHECK(r.ok());
  return *r;
}

void SweepMemoryBudget() {
  Section(
      "PNHL under a memory budget (|SUPPLIER| = 400, |PART| = 4000, "
      "fanout 12)");
  Workload w = MakeWorkload(400, 4000, 12, 19);
  size_t inner_bytes = w.inner.ApproxBytes();
  std::printf("flat build table ≈ %zu KiB\n\n", inner_bytes / 1024);
  std::printf("%16s %12s %14s %14s %16s\n", "budget (KiB)", "partitions",
              "PNHL (ms)", "build inserts", "probe passes");
  Value reference = Must(PnhlJoin(w.outer, w.inner, w.params, nullptr));
  for (size_t kib : {SIZE_MAX / 1024, size_t{512}, size_t{128}, size_t{32},
                     size_t{8}}) {
    PnhlParams p = w.params;
    p.memory_budget = kib == SIZE_MAX / 1024 ? SIZE_MAX : kib * 1024;
    PnhlStats stats;
    Value out = Must(PnhlJoin(w.outer, w.inner, p, &stats));
    N2J_CHECK(out == reference);
    double ms = TimeMs([&] { Must(PnhlJoin(w.outer, w.inner, p, nullptr)); },
                       60);
    char label[32];
    if (kib == SIZE_MAX / 1024) {
      std::snprintf(label, sizeof(label), "unlimited");
    } else {
      std::snprintf(label, sizeof(label), "%zu", kib);
    }
    std::printf("%16s %12u %14.3f %14llu %16llu\n", label, stats.partitions,
                ms, static_cast<unsigned long long>(stats.build_inserts),
                static_cast<unsigned long long>(stats.probe_tuples));
  }
  std::printf(
      "\nAs the budget shrinks, PNHL partitions the flat table and probes\n"
      "the clustered outer operand once per segment — degrading linearly\n"
      "in the number of partitions rather than spilling.\n");
}

void SweepStrategies() {
  Section("PNHL vs unnest–join–nest vs nested loop (fanout sweep)");
  std::printf("%8s %12s %20s %18s %12s\n", "fanout", "PNHL (ms)",
              "unnest-join-nest (ms)", "nested loop (ms)", "dangling");
  for (int fanout : {2, 8, 32}) {
    Workload w = MakeWorkload(200, 1000, fanout, 23);
    Value a = Must(PnhlJoin(w.outer, w.inner, w.params, nullptr));
    Value b = Must(UnnestJoinNest(w.outer, w.inner, w.params, true, nullptr));
    Value lossy =
        Must(UnnestJoinNest(w.outer, w.inner, w.params, false, nullptr));
    Value c = Must(NestedLoopSetJoin(w.outer, w.inner, w.params, nullptr));
    N2J_CHECK(a == b);
    N2J_CHECK(a == c);
    double pnhl_ms =
        TimeMs([&] { Must(PnhlJoin(w.outer, w.inner, w.params, nullptr)); },
               40);
    double ujn_ms = TimeMs(
        [&] {
          Must(UnnestJoinNest(w.outer, w.inner, w.params, true, nullptr));
        },
        40);
    double nl_ms = TimeMs(
        [&] {
          Must(NestedLoopSetJoin(w.outer, w.inner, w.params, nullptr));
        },
        fanout >= 32 ? 20 : 40);
    std::printf("%8d %12.3f %20.3f %18.3f %9zu\n", fanout, pnhl_ms, ujn_ms,
                nl_ms, a.set_size() - lossy.set_size());
  }
  std::printf(
      "\n'dangling' counts outer tuples with empty set attributes that the\n"
      "plain unnest-based plan silently loses (Section 4's caveat) — the\n"
      "keep_dangling repair adds an extra pass the timing includes.\n");
}

void BM_Pnhl(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<int>(state.range(0)),
                            static_cast<int>(state.range(0)) * 5, 8, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Must(PnhlJoin(w.outer, w.inner, w.params, nullptr)));
  }
}
BENCHMARK(BM_Pnhl)->Arg(100)->Arg(400);

void BM_PnhlPartitioned(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<int>(state.range(0)),
                            static_cast<int>(state.range(0)) * 5, 8, 7);
  w.params.memory_budget = 16 * 1024;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Must(PnhlJoin(w.outer, w.inner, w.params, nullptr)));
  }
}
BENCHMARK(BM_PnhlPartitioned)->Arg(100)->Arg(400);

void BM_UnnestJoinNest(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<int>(state.range(0)),
                            static_cast<int>(state.range(0)) * 5, 8, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Must(UnnestJoinNest(w.outer, w.inner, w.params, true, nullptr)));
  }
}
BENCHMARK(BM_UnnestJoinNest)->Arg(100)->Arg(400);

void BM_NestedLoopSetJoin(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<int>(state.range(0)),
                            static_cast<int>(state.range(0)) * 5, 8, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Must(NestedLoopSetJoin(w.outer, w.inner, w.params, nullptr)));
  }
}
BENCHMARK(BM_NestedLoopSetJoin)->Arg(100);

}  // namespace
}  // namespace n2j

int main(int argc, char** argv) {
  n2j::SweepMemoryBudget();
  n2j::SweepStrategies();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
